#include "core/baselines.h"

#include <cmath>
#include <filesystem>
#include <fstream>

#include "nn/serialize.h"
#include "util/checks.h"
#include "util/timer.h"

namespace rrp::core {

StaticProvider::StaticProvider(const nn::Network& net,
                               const prune::PruneLevelLibrary& levels,
                               int fixed_level,
                               const std::vector<BnState>& bn_states)
    : name_("static-L" + std::to_string(fixed_level)),
      net_(net.clone()),
      fixed_level_(fixed_level),
      level_count_(levels.level_count()) {
  RRP_CHECK(fixed_level >= 0 && fixed_level < levels.level_count());
  RRP_CHECK_MSG(bn_states.empty() ||
                    static_cast<int>(bn_states.size()) == levels.level_count(),
                "need exactly one BnState per level");
  levels.mask(fixed_level).apply(net_);
  if (!bn_states.empty())
    apply_bn_state(net_, bn_states[static_cast<std::size_t>(fixed_level)]);
}

nn::Tensor StaticProvider::infer(const nn::Tensor& x) {
  return net_.forward(x, false);
}

TransitionStats StaticProvider::set_level(int level) {
  // Design-time pruning cannot adapt: the request is recorded and ignored.
  TransitionStats stats;
  stats.from_level = fixed_level_;
  stats.to_level = fixed_level_;
  stats.is_restore = level < fixed_level_;
  return stats;
}

std::int64_t StaticProvider::active_macs(const nn::Shape& input_shape) {
  return net_.effective_macs(input_shape);
}

std::int64_t StaticProvider::resident_weight_bytes() {
  return net_.param_count() * static_cast<std::int64_t>(sizeof(float));
}

ReloadProvider::ReloadProvider(const nn::Network& net,
                               const prune::PruneLevelLibrary& levels,
                               Source source, std::string artifact_dir,
                               const std::vector<BnState>& bn_states)
    : name_(source == Source::Memory ? "reload-memory" : "reload-disk"),
      source_(source),
      artifact_dir_(std::move(artifact_dir)) {
  RRP_CHECK(levels.level_count() >= 1);
  RRP_CHECK_MSG(bn_states.empty() ||
                    static_cast<int>(bn_states.size()) == levels.level_count(),
                "need exactly one BnState per level");
  if (source_ == Source::Disk) {
    RRP_CHECK_MSG(!artifact_dir_.empty(),
                  "disk reload baseline needs an artifact directory");
    std::filesystem::create_directories(artifact_dir_);
  }
  for (int k = 0; k < levels.level_count(); ++k) {
    nn::Network pruned = net.clone();
    levels.mask(k).apply(pruned);
    if (!bn_states.empty())
      apply_bn_state(pruned, bn_states[static_cast<std::size_t>(k)]);
    blobs_.push_back(nn::serialize_network(pruned));
    if (source_ == Source::Disk) {
      std::ofstream f(path_for(k), std::ios::binary | std::ios::trunc);
      RRP_CHECK_MSG(f.good(), "cannot write artifact " << path_for(k));
      f.write(blobs_.back().data(),
              static_cast<std::streamsize>(blobs_.back().size()));
    }
  }
  active_ = nn::deserialize_network(blobs_[0]);
}

std::string ReloadProvider::path_for(int level) const {
  return artifact_dir_ + "/level_" + std::to_string(level) + ".rrpn";
}

nn::Tensor ReloadProvider::infer(const nn::Tensor& x) {
  return active_.forward(x, false);
}

nn::Network ReloadProvider::load_with_retry(int level, TransitionStats& stats) {
  std::string last_error;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      stats.backoff_us +=
          retry_.base_us * std::pow(retry_.mult, attempt - 1);
      ++stats.read_retries;
    }
    try {
      if (injected_read_failures_ > 0) {
        --injected_read_failures_;
        throw SerializationError("injected transient artifact read failure");
      }
      std::string bytes;
      if (source_ == Source::Disk) {
        const std::string path = path_for(level);
        std::ifstream f(path, std::ios::binary);
        if (!f)
          throw SerializationError("cannot open artifact '" + path +
                                   "' for level " + std::to_string(level));
        bytes.assign(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
        if (static_cast<std::int64_t>(bytes.size()) != artifact_bytes(level))
          throw SerializationError(
              "artifact '" + path + "' is truncated: " +
              std::to_string(bytes.size()) + " of " +
              std::to_string(artifact_bytes(level)) + " bytes");
      } else {
        bytes = blobs_[static_cast<std::size_t>(level)];
      }
      nn::Network net = nn::deserialize_network(bytes);
      stats.bytes_written = static_cast<std::int64_t>(bytes.size());
      return net;
    } catch (const Error& e) {
      last_error = e.what();
    }
  }
  throw SerializationError(
      name_ + ": artifact for level " + std::to_string(level) +
      " unreadable after " + std::to_string(retry_.max_attempts) +
      " attempts — " + last_error);
}

// rrp-frame-path-stop: the reload baseline is the paper's measured
// comparison arm, not a certified frame path — load_with_retry does
// full-artifact IO, allocates a fresh network, and throws
// SerializationError when the store is corrupt by design.
TransitionStats ReloadProvider::set_level(int level) {
  RRP_CHECK_MSG(level >= 0 && level < level_count(),
                "level " << level << " outside [0, " << level_count() << ")");
  TransitionStats stats;
  stats.from_level = current_level_;
  stats.to_level = level;
  stats.is_restore = level < current_level_;
  if (level == current_level_) return stats;

  Timer timer;
  active_ = load_with_retry(level, stats);
  stats.elements_changed = active_.param_count();
  stats.wall_us = timer.elapsed_us();
  current_level_ = level;
  return stats;
}

// rrp-frame-path-stop: recovery-by-reload arm — same full-artifact
// IO/allocation/throw surface as ReloadProvider::set_level above.
TransitionStats ReloadProvider::reload_current() {
  TransitionStats stats;
  stats.from_level = current_level_;
  stats.to_level = current_level_;
  Timer timer;
  active_ = load_with_retry(current_level_, stats);
  stats.elements_changed = active_.param_count();
  stats.wall_us = timer.elapsed_us();
  return stats;
}

std::int64_t ReloadProvider::active_macs(const nn::Shape& input_shape) {
  return active_.effective_macs(input_shape);
}

std::int64_t ReloadProvider::resident_weight_bytes() {
  // Only the active model is resident as weights; artifacts live on disk
  // (memory mode additionally keeps the blobs, counted here honestly).
  std::int64_t total =
      active_.param_count() * static_cast<std::int64_t>(sizeof(float));
  if (source_ == Source::Memory)
    for (const auto& b : blobs_) total += static_cast<std::int64_t>(b.size());
  return total;
}

std::int64_t ReloadProvider::artifact_bytes(int level) const {
  RRP_CHECK(level >= 0 && level < level_count());
  return static_cast<std::int64_t>(blobs_[static_cast<std::size_t>(level)].size());
}

}  // namespace rrp::core
