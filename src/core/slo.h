// slo.h — declarative service-level objectives over the metrics registry.
//
// The observability layer (DESIGN.md §8) records what happened; this layer
// decides whether what happened was ACCEPTABLE.  An SloSpec is a small,
// serializable predicate over the process-wide metrics registry — a ratio
// of two counters (deadline-miss rate), or an upper quantile of a fixed-
// bound histogram (recovery-latency p99, scrub-detection latency) — with a
// threshold and a minimum sample count.  An SloMonitor evaluates its specs
// online (the runner calls it once per frame) and latches one structured
// Incident per breached spec; direct safety events (certified-level
// violations, watchdog degrades, integrity detections) are noted as
// incidents too, via note_event.
//
// Incidents are the trigger for the black-box flight recorder's bundle
// dump (core/flight_recorder.h): the monitor explains WHY a bundle exists,
// the recorder explains WHAT led up to it.  Both are deterministic — the
// registry's counters and histogram buckets are byte-exact for any
// RRP_THREADS, so the same run always raises the same incidents at the
// same frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace rrp::core {

/// How an SloSpec is evaluated against the metrics registry.
enum class SloKind : int {
  RatioMax = 0,             ///< counter(numerator)/counter(denominator) <= threshold
  HistogramQuantileMax = 1, ///< quantile(histogram, q) <= threshold
};

const char* slo_kind_name(SloKind k);

/// One declarative objective.  Strings name registry metrics; the spec is
/// serialized into incident bundles so replay re-evaluates the exact same
/// predicates.
struct SloSpec {
  std::string id;            ///< stable identifier ("slo.deadline_miss_rate")
  SloKind kind = SloKind::RatioMax;
  std::string numerator;     ///< RatioMax: counter name
  std::string denominator;   ///< RatioMax: counter name (also the sample count)
  std::string histogram;     ///< HistogramQuantileMax: histogram name
  double quantile = 0.99;    ///< HistogramQuantileMax only
  double threshold = 0.0;    ///< breach when observed > threshold
  std::int64_t min_samples = 1;  ///< do not evaluate below this sample count
};

/// One breach (or directly-noted safety event), in frame order.
struct Incident {
  std::int64_t frame = 0;
  std::string slo_id;
  double observed = 0.0;
  double threshold = 0.0;
  std::string detail;
};

/// Upper-bound quantile estimate from a fixed-bound histogram: the least
/// bucket upper bound whose cumulative count reaches q * total.  Returns
/// +inf when the quantile lands in the overflow bucket, 0 when empty.
double histogram_quantile(const metrics::Histogram& h, double q);

/// Evaluates a set of SloSpecs online.  Spec breaches latch: each spec
/// raises at most one Incident per monitor lifetime (an SLO that stays
/// breached for 500 frames is one incident, not 500).  Directly-noted
/// events do not latch but are capped at kMaxIncidents total (the
/// overflow count is retained so nothing is silently lost).
class SloMonitor {
 public:
  /// Hard cap on stored incidents; note_event beyond it only counts.
  static constexpr std::size_t kMaxIncidents = 64;

  explicit SloMonitor(std::vector<SloSpec> specs);

  /// Evaluates every spec against the current registry state.  Call from
  /// the driving thread only (reads are relaxed; parallel work for the
  /// frame has already joined when the runner calls this).
  void evaluate(std::int64_t frame);

  /// Notes a direct safety event (certified violation, watchdog degrade,
  /// integrity detection) as an incident without a spec.
  void note_event(std::int64_t frame, const std::string& id, double observed,
                  const std::string& detail);

  bool any_incident() const { return !incidents_.empty(); }
  const std::vector<Incident>& incidents() const { return incidents_; }
  std::int64_t dropped_incidents() const { return dropped_; }
  const std::vector<SloSpec>& specs() const { return specs_; }

  /// Unlatches every spec and drops all incidents.
  void clear();

 private:
  void push(Incident incident);

  std::vector<SloSpec> specs_;
  std::vector<bool> fired_;  ///< latch per spec, parallel to specs_
  std::vector<Incident> incidents_;
  std::int64_t dropped_ = 0;
};

/// The repo's standard objectives: deadline-miss rate <= 5% (>= 50 frames),
/// recovery-latency p99 <= 20 ms, scrub-detection-latency p99 <= 50 frames.
std::vector<SloSpec> standard_slos();

// ---------------------------------------------------------------------------
// Multi-window error-budget burn-rate alerting (DESIGN.md §8).
//
// A latched SLO breach (above) is a *post-hoc* verdict: the miss-rate spec
// needs min_samples before it can even evaluate, and by then the budget is
// spent.  Burn rate is the *leading* signal: with error budget B (the
// long-run error ratio the SLO tolerates), the burn of a window is
//
//     burn = (window error ratio) / B
//
// burn == 1 spends budget exactly at the sustainable rate.  Following the
// multi-window recipe, the alert fires only when BOTH a fast window (low
// detection latency) and a slow window (blip suppression) exceed their
// burn thresholds.  The tracker is a pure function of the sequence of
// cumulative counter values fed to update(), so fixtures are
// hand-computable and the alert tick is byte-deterministic.

/// Configuration for one burn-rate alert over a counter ratio.
struct BurnRateConfig {
  std::string id;           ///< stable identifier ("burn.deadline_miss")
  std::string numerator;    ///< counter name: cumulative errors
  std::string denominator;  ///< counter name: cumulative samples
  double budget = 0.10;     ///< error budget B (allowed long-run ratio)
  int fast_window = 8;      ///< ticks in the fast window
  int slow_window = 32;     ///< ticks in the slow window (>= fast_window)
  double fast_burn_threshold = 2.0;
  double slow_burn_threshold = 1.0;
  /// Do not alert before the fast window has seen this many samples.
  std::int64_t min_samples = 8;
};

/// Observable state after each update() call.
struct BurnRateState {
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool alerting = false;        ///< both windows over threshold THIS tick
  bool latched = false;         ///< alerting was ever true
  std::int64_t alert_tick = -1; ///< first alerting tick (-1: never)
};

/// Sliding-window burn computation.  Feed CUMULATIVE counter values once
/// per tick from the driving thread; deltas are windowed internally.
class BurnRateTracker {
 public:
  explicit BurnRateTracker(BurnRateConfig cfg);

  /// `num_total` / `den_total` are the cumulative counter values at the
  /// END of `tick`.  Ticks must be fed in order, exactly once each.
  const BurnRateState& update(std::int64_t tick, std::int64_t num_total,
                              std::int64_t den_total);

  const BurnRateState& state() const { return state_; }
  const BurnRateConfig& config() const { return cfg_; }
  void reset();

 private:
  BurnRateConfig cfg_;
  BurnRateState state_;
  std::int64_t last_num_ = 0;
  std::int64_t last_den_ = 0;
  /// Per-tick (errors, samples) deltas, newest last, <= slow_window long.
  std::vector<std::pair<std::int64_t, std::int64_t>> window_;
};

}  // namespace rrp::core
