// slo.h — declarative service-level objectives over the metrics registry.
//
// The observability layer (DESIGN.md §8) records what happened; this layer
// decides whether what happened was ACCEPTABLE.  An SloSpec is a small,
// serializable predicate over the process-wide metrics registry — a ratio
// of two counters (deadline-miss rate), or an upper quantile of a fixed-
// bound histogram (recovery-latency p99, scrub-detection latency) — with a
// threshold and a minimum sample count.  An SloMonitor evaluates its specs
// online (the runner calls it once per frame) and latches one structured
// Incident per breached spec; direct safety events (certified-level
// violations, watchdog degrades, integrity detections) are noted as
// incidents too, via note_event.
//
// Incidents are the trigger for the black-box flight recorder's bundle
// dump (core/flight_recorder.h): the monitor explains WHY a bundle exists,
// the recorder explains WHAT led up to it.  Both are deterministic — the
// registry's counters and histogram buckets are byte-exact for any
// RRP_THREADS, so the same run always raises the same incidents at the
// same frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace rrp::core {

/// How an SloSpec is evaluated against the metrics registry.
enum class SloKind : int {
  RatioMax = 0,             ///< counter(numerator)/counter(denominator) <= threshold
  HistogramQuantileMax = 1, ///< quantile(histogram, q) <= threshold
};

const char* slo_kind_name(SloKind k);

/// One declarative objective.  Strings name registry metrics; the spec is
/// serialized into incident bundles so replay re-evaluates the exact same
/// predicates.
struct SloSpec {
  std::string id;            ///< stable identifier ("slo.deadline_miss_rate")
  SloKind kind = SloKind::RatioMax;
  std::string numerator;     ///< RatioMax: counter name
  std::string denominator;   ///< RatioMax: counter name (also the sample count)
  std::string histogram;     ///< HistogramQuantileMax: histogram name
  double quantile = 0.99;    ///< HistogramQuantileMax only
  double threshold = 0.0;    ///< breach when observed > threshold
  std::int64_t min_samples = 1;  ///< do not evaluate below this sample count
};

/// One breach (or directly-noted safety event), in frame order.
struct Incident {
  std::int64_t frame = 0;
  std::string slo_id;
  double observed = 0.0;
  double threshold = 0.0;
  std::string detail;
};

/// Upper-bound quantile estimate from a fixed-bound histogram: the least
/// bucket upper bound whose cumulative count reaches q * total.  Returns
/// +inf when the quantile lands in the overflow bucket, 0 when empty.
double histogram_quantile(const metrics::Histogram& h, double q);

/// Evaluates a set of SloSpecs online.  Spec breaches latch: each spec
/// raises at most one Incident per monitor lifetime (an SLO that stays
/// breached for 500 frames is one incident, not 500).  Directly-noted
/// events do not latch but are capped at kMaxIncidents total (the
/// overflow count is retained so nothing is silently lost).
class SloMonitor {
 public:
  /// Hard cap on stored incidents; note_event beyond it only counts.
  static constexpr std::size_t kMaxIncidents = 64;

  explicit SloMonitor(std::vector<SloSpec> specs);

  /// Evaluates every spec against the current registry state.  Call from
  /// the driving thread only (reads are relaxed; parallel work for the
  /// frame has already joined when the runner calls this).
  void evaluate(std::int64_t frame);

  /// Notes a direct safety event (certified violation, watchdog degrade,
  /// integrity detection) as an incident without a spec.
  void note_event(std::int64_t frame, const std::string& id, double observed,
                  const std::string& detail);

  bool any_incident() const { return !incidents_.empty(); }
  const std::vector<Incident>& incidents() const { return incidents_; }
  std::int64_t dropped_incidents() const { return dropped_; }
  const std::vector<SloSpec>& specs() const { return specs_; }

  /// Unlatches every spec and drops all incidents.
  void clear();

 private:
  void push(Incident incident);

  std::vector<SloSpec> specs_;
  std::vector<bool> fired_;  ///< latch per spec, parallel to specs_
  std::vector<Incident> incidents_;
  std::int64_t dropped_ = 0;
};

/// The repo's standard objectives: deadline-miss rate <= 5% (>= 50 frames),
/// recovery-latency p99 <= 20 ms, scrub-detection-latency p99 <= 50 frames.
std::vector<SloSpec> standard_slos();

}  // namespace rrp::core
