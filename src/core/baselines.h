// baselines.h — the comparison systems the paper's evaluation needs.
//
//  * StaticProvider      — design-time pruning: one fixed level, runtime
//                          requests to change level are ignored (that is
//                          the point of the baseline).
//  * ReloadProvider      — NON-reversible runtime pruning: only the
//                          currently-active artifact exists; changing level
//                          means deserializing another serialized model
//                          (from RAM or from disk), exactly like a deployed
//                          stack re-loading a .onnx/.pt file.  Recovery
//                          latency scales with model size, not with Δ.
//
// The retraining-recovery baseline (fine-tune after pruning) is exercised
// directly by bench R-T1 via nn::train_sgd with freeze_zeros.
#pragma once

#include <optional>

#include "core/reversible_pruner.h"

namespace rrp::core {

/// Fixed design-time pruning at one level; level-change requests are no-ops.
class StaticProvider : public InferenceProvider {
 public:
  /// Clones `net`, applies the library's mask at `fixed_level`.  When
  /// `bn_states` is non-empty (one per level), the fixed level's calibrated
  /// BatchNorm statistics are baked in — a deployed pruned artifact would
  /// ship with its own statistics.
  StaticProvider(const nn::Network& net, const prune::PruneLevelLibrary& levels,
                 int fixed_level, const std::vector<BnState>& bn_states = {});

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  /// Ignores the request (records it in stats, changes nothing).
  TransitionStats set_level(int level) override;
  int current_level() const override { return fixed_level_; }
  int level_count() const override { return level_count_; }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  std::int64_t resident_weight_bytes() override;

 private:
  std::string name_;
  nn::Network net_;
  int fixed_level_;
  int level_count_;
};

/// Non-reversible baseline: switching level deserializes a stored artifact.
class ReloadProvider : public InferenceProvider {
 public:
  enum class Source { Memory, Disk };

  /// Bounded retry-with-backoff for transient artifact-read failures.  A
  /// deployed stack retries a flaky storage read rather than dying; the
  /// backoff delay is MODELED (deterministic), not slept, so campaign
  /// results stay bit-reproducible.  attempt k (0-based retry) waits
  /// base_us * mult^k.
  struct RetryPolicy {
    int max_attempts = 4;      ///< total tries, including the first
    double base_us = 200.0;    ///< modeled delay before the first retry
    double mult = 2.0;         ///< exponential backoff factor
  };

  /// Builds one serialized artifact per level from `net` + `levels`; each
  /// artifact embeds its level's calibrated BatchNorm statistics when
  /// `bn_states` is supplied (one per level).  With Source::Disk the blobs
  /// are written to `artifact_dir` (created if missing) and every switch
  /// re-reads the file.
  ReloadProvider(const nn::Network& net, const prune::PruneLevelLibrary& levels,
                 Source source, std::string artifact_dir = "",
                 const std::vector<BnState>& bn_states = {});

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  TransitionStats set_level(int level) override;
  int current_level() const override { return current_level_; }
  int level_count() const override { return static_cast<int>(blobs_.size()); }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  std::int64_t resident_weight_bytes() override;

  /// Size of one level's artifact in bytes.
  std::int64_t artifact_bytes(int level) const;

  /// Path of one level's on-disk artifact (Disk mode; empty dir otherwise).
  std::string artifact_path(int level) const { return path_for(level); }

  /// Re-deserializes the CURRENT level's artifact — the reload stack's only
  /// recovery path after in-memory weight corruption (it has no golden
  /// store to heal from).  Pays the full artifact cost every time.
  TransitionStats reload_current();

  /// The resident network (fault-injection target; see sim/faults.h).
  nn::Network& active_network() { return active_; }

  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// FAULT-INJECTION HOOK: the next `n` artifact reads fail as if the
  /// storage returned garbage; the retry loop absorbs up to
  /// retry_policy().max_attempts - 1 of them per switch.
  void inject_read_failures(int n) { injected_read_failures_ = n; }
  int pending_read_failures() const { return injected_read_failures_; }

 private:
  std::string path_for(int level) const;

  /// Loads `level`'s artifact with bounded retry; fills retry accounting
  /// into `stats` and returns the deserialized network.  Throws
  /// rrp::SerializationError naming the artifact after the final attempt.
  nn::Network load_with_retry(int level, TransitionStats& stats);

  std::string name_;
  Source source_;
  std::string artifact_dir_;
  std::vector<std::string> blobs_;  // kept even in Disk mode for sizing
  nn::Network active_;
  int current_level_ = 0;
  RetryPolicy retry_;
  int injected_read_failures_ = 0;
};

}  // namespace rrp::core
