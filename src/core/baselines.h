// baselines.h — the comparison systems the paper's evaluation needs.
//
//  * StaticProvider      — design-time pruning: one fixed level, runtime
//                          requests to change level are ignored (that is
//                          the point of the baseline).
//  * ReloadProvider      — NON-reversible runtime pruning: only the
//                          currently-active artifact exists; changing level
//                          means deserializing another serialized model
//                          (from RAM or from disk), exactly like a deployed
//                          stack re-loading a .onnx/.pt file.  Recovery
//                          latency scales with model size, not with Δ.
//
// The retraining-recovery baseline (fine-tune after pruning) is exercised
// directly by bench R-T1 via nn::train_sgd with freeze_zeros.
#pragma once

#include <optional>

#include "core/reversible_pruner.h"

namespace rrp::core {

/// Fixed design-time pruning at one level; level-change requests are no-ops.
class StaticProvider : public InferenceProvider {
 public:
  /// Clones `net`, applies the library's mask at `fixed_level`.  When
  /// `bn_states` is non-empty (one per level), the fixed level's calibrated
  /// BatchNorm statistics are baked in — a deployed pruned artifact would
  /// ship with its own statistics.
  StaticProvider(const nn::Network& net, const prune::PruneLevelLibrary& levels,
                 int fixed_level, const std::vector<BnState>& bn_states = {});

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  /// Ignores the request (records it in stats, changes nothing).
  TransitionStats set_level(int level) override;
  int current_level() const override { return fixed_level_; }
  int level_count() const override { return level_count_; }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  std::int64_t resident_weight_bytes() override;

 private:
  std::string name_;
  nn::Network net_;
  int fixed_level_;
  int level_count_;
};

/// Non-reversible baseline: switching level deserializes a stored artifact.
class ReloadProvider : public InferenceProvider {
 public:
  enum class Source { Memory, Disk };

  /// Builds one serialized artifact per level from `net` + `levels`; each
  /// artifact embeds its level's calibrated BatchNorm statistics when
  /// `bn_states` is supplied (one per level).  With Source::Disk the blobs
  /// are written to `artifact_dir` (created if missing) and every switch
  /// re-reads the file.
  ReloadProvider(const nn::Network& net, const prune::PruneLevelLibrary& levels,
                 Source source, std::string artifact_dir = "",
                 const std::vector<BnState>& bn_states = {});

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  TransitionStats set_level(int level) override;
  int current_level() const override { return current_level_; }
  int level_count() const override { return static_cast<int>(blobs_.size()); }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  std::int64_t resident_weight_bytes() override;

  /// Size of one level's artifact in bytes.
  std::int64_t artifact_bytes(int level) const;

 private:
  std::string path_for(int level) const;

  std::string name_;
  Source source_;
  std::string artifact_dir_;
  std::vector<std::string> blobs_;  // kept even in Disk mode for sizing
  nn::Network active_;
  int current_level_ = 0;
};

}  // namespace rrp::core
