#include "core/level_train.h"

#include <algorithm>

#include "util/checks.h"
#include "util/log.h"

namespace rrp::core {

namespace {

/// Stash/unstash of the parameters any level masks (the deepest level's
/// mask is the superset, thanks to nesting).
class ParamStash {
 public:
  ParamStash(nn::Network& net, const prune::NetworkMask& superset) {
    auto params = net.params();
    for (const auto& [name, keep] : superset.entries()) {
      for (auto& p : params)
        if (p.name == name) {
          slots_.push_back({p.value, nn::Tensor()});
          break;
        }
    }
  }

  void stash() {
    for (auto& s : slots_) s.copy = *s.live;
  }
  void unstash() {
    for (auto& s : slots_) *s.live = std::move(s.copy);
  }

 private:
  struct Slot {
    nn::Tensor* live;
    nn::Tensor copy;
  };
  std::vector<Slot> slots_;
};

/// Batches run at a masked level must not pollute the SHARED BatchNorm
/// running statistics with zeroed-channel activations: stats updates are
/// kept only for level-0 batches, and rolled back otherwise.
class BnStatsStash {
 public:
  explicit BnStatsStash(nn::Network& net) {
    for (nn::Layer* l : net.leaf_layers())
      if (auto* bn = dynamic_cast<nn::BatchNorm*>(l))
        slots_.push_back({bn, nn::Tensor(), nn::Tensor()});
  }

  void stash() {
    for (auto& s : slots_) {
      s.mean = s.bn->running_mean();
      s.var = s.bn->running_var();
    }
  }
  void unstash() {
    for (auto& s : slots_) {
      s.bn->running_mean() = std::move(s.mean);
      s.bn->running_var() = std::move(s.var);
    }
  }

 private:
  struct Slot {
    nn::BatchNorm* bn;
    nn::Tensor mean, var;
  };
  std::vector<Slot> slots_;
};

}  // namespace

CoTrainStats co_train_levels(nn::Network& net,
                             const prune::PruneLevelLibrary& levels,
                             const nn::Dataset& train_data,
                             const nn::Dataset& eval_data,
                             const CoTrainConfig& config, Rng& rng) {
  RRP_CHECK(levels.level_count() >= 1);
  RRP_CHECK(config.epochs >= 0);
  RRP_CHECK(config.level0_weight >= 0.0 && config.level0_weight <= 1.0);
  RRP_CHECK(train_data.size() > 0);

  const int level_count = levels.level_count();
  ParamStash stash(net, levels.mask(level_count - 1));
  BnStatsStash bn_stats(net);

  nn::SgdConfig sgd = config.sgd;
  nn::SgdOptimizer opt(net, sgd);
  std::vector<int> batch_labels;

  // Level sampling distribution: level0_weight on 0, uniform on the rest.
  std::vector<double> level_weights(static_cast<std::size_t>(level_count),
                                    level_count > 1
                                        ? (1.0 - config.level0_weight) /
                                              (level_count - 1)
                                        : 0.0);
  level_weights[0] = level_count > 1 ? config.level0_weight : 1.0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(train_data.size());
    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(sgd.batch_size)) {
      const std::size_t count = std::min(
          static_cast<std::size_t>(sgd.batch_size), order.size() - first);
      const nn::Tensor x = train_data.batch(order, first, count, &batch_labels);

      const int k = static_cast<int>(rng.categorical(level_weights));

      net.zero_grad();
      stash.stash();
      if (k > 0) bn_stats.stash();
      levels.mask(k).apply(net);
      const nn::Tensor logits = net.forward(x, /*training=*/true);
      const nn::LossResult lr = nn::softmax_cross_entropy(logits, batch_labels);
      net.backward(lr.grad);
      stash.unstash();   // masked weights come back before the dense update
      if (k > 0) bn_stats.unstash();  // masked batches don't move BN stats
      opt.step();
    }
    opt.set_lr(opt.lr() * config.lr_decay_per_epoch);
    RRP_LOG_DEBUG << "co-train epoch " << epoch << " done";
  }

  CoTrainStats stats;
  if (eval_data.size() > 0) {
    for (int k = 0; k < level_count; ++k) {
      stash.stash();
      levels.mask(k).apply(net);
      stats.final_level_accuracy.push_back(
          nn::evaluate_accuracy(net, eval_data));
      stash.unstash();
    }
  }
  return stats;
}

}  // namespace rrp::core
