#include "core/assurance_export.h"

#include <ostream>
#include <sstream>

namespace rrp::core {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_assurance_json(const AssuranceReport& report, std::ostream& out) {
  const RunSummary& s = report.summary;
  out << "{\n"
      << "  \"scenario\": \"" << json_escape(report.scenario) << "\",\n"
      << "  \"provider\": \"" << json_escape(report.provider) << "\",\n"
      << "  \"policy\": \"" << json_escape(report.policy) << "\",\n"
      << "  \"certified_max_level\": {\n";
  for (int c = 0; c < kCriticalityClasses; ++c) {
    out << "    \"" << criticality_name(static_cast<CriticalityClass>(c))
        << "\": " << report.certified.max_level_for[static_cast<std::size_t>(c)]
        << (c + 1 < kCriticalityClasses ? ",\n" : "\n");
  }
  out << "  },\n"
      << "  \"summary\": {\n"
      << "    \"frames\": " << s.frames << ",\n"
      << "    \"accuracy\": " << s.accuracy << ",\n"
      << "    \"critical_accuracy\": " << s.critical_accuracy << ",\n"
      << "    \"missed_critical_rate\": " << s.missed_critical_rate << ",\n"
      << "    \"deadline_miss_rate\": " << s.deadline_miss_rate << ",\n"
      << "    \"total_energy_mj\": " << s.total_energy_mj << ",\n"
      << "    \"mean_level\": " << s.mean_level << ",\n"
      << "    \"level_switches\": " << s.level_switches << ",\n"
      << "    \"mean_switch_us\": " << s.mean_switch_us << ",\n"
      << "    \"vetoes\": " << s.vetoes << ",\n"
      << "    \"violations_sensed_basis\": " << s.safety_violations << ",\n"
      << "    \"violations_true_basis\": " << s.true_safety_violations
      << "\n  },\n"
      << "  \"assurance_log\": [\n";
  for (std::size_t i = 0; i < report.log.size(); ++i) {
    const AssuranceRecord& r = report.log[i];
    out << "    {\"frame\": " << r.frame << ", \"kind\": \""
        << assurance_kind_name(r.kind) << "\", \"criticality\": \""
        << criticality_name(r.criticality) << "\", \"requested_level\": "
        << r.requested_level << ", \"enforced_level\": " << r.enforced_level
        << ", \"veto\": " << (r.veto ? "true" : "false")
        << ", \"violation\": " << (r.violation ? "true" : "false")
        << ", \"elements\": " << r.elements << ", \"detail\": \""
        << json_escape(r.detail) << "\"}"
        << (i + 1 < report.log.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

std::string assurance_json(const AssuranceReport& report) {
  std::ostringstream os;
  write_assurance_json(report, os);
  return os.str();
}

}  // namespace rrp::core
