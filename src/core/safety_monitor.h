// safety_monitor.h — runtime safety supervision of the pruning level.
//
// Certification model: for each criticality class the system integrator
// certifies a maximum admissible pruning level (from offline accuracy-vs-
// level validation, cf. experiments R-F1/R-F5).  The monitor sits between
// the controller and the execution provider:
//   * it VETOES any decision that would exceed the certified level for the
//     current criticality, substituting the certified maximum, and
//   * it flags a SAFETY VIOLATION whenever a frame executes above the
//     certified level anyway (possible with non-reversible baselines whose
//     recovery lags the criticality change).
// Every intervention is recorded in an assurance log suitable for a safety
// case ("at frame t, criticality rose to C, level forced from k to k′").
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rrp::core {

/// Scene criticality, ordered from benign to imminent hazard.
enum class CriticalityClass : int { Low = 0, Medium = 1, High = 2, Critical = 3 };

constexpr int kCriticalityClasses = 4;

const char* criticality_name(CriticalityClass c);

/// Per-class certified maximum pruning level.
struct SafetyConfig {
  /// max_level_for[c] = highest admissible level at criticality c.
  /// Defaults certify full accuracy (level 0) in Critical scenes and relax
  /// progressively for calmer traffic.
  std::array<int, kCriticalityClasses> max_level_for = {4, 3, 1, 0};
};

/// What kind of safety evidence an assurance-log entry carries.  The level
/// kinds cover the certified-ladder story; the integrity/watchdog kinds
/// extend the safety case to weight faults and timing faults.
enum class AssuranceKind : int {
  LevelVeto = 0,        ///< screen() overrode the controller's request
  LevelViolation = 1,   ///< audit() saw an over-certified executed level
  IntegrityDetect = 2,  ///< scrub found live/golden divergence
  IntegrityRepair = 3,  ///< self-heal rewrote the divergent elements
  WatchdogDegrade = 4,  ///< deadline watchdog forced the certified level
};

const char* assurance_kind_name(AssuranceKind k);

/// One assurance-log entry.
struct AssuranceRecord {
  std::int64_t frame = 0;
  AssuranceKind kind = AssuranceKind::LevelVeto;
  CriticalityClass criticality = CriticalityClass::Low;
  int requested_level = 0;
  int enforced_level = 0;
  bool veto = false;       ///< monitor overrode the controller's request
  bool violation = false;  ///< the executed level exceeded the certified max
  /// Integrity kinds: elements diverged (Detect) / repaired (Repair).
  std::int64_t elements = 0;
  /// Free-form evidence detail ("param conv1.weight", "store corrupt", …).
  std::string detail;
};

class SafetyMonitor {
 public:
  explicit SafetyMonitor(SafetyConfig config = {});

  const SafetyConfig& config() const { return config_; }

  /// Certified maximum level for a criticality class.
  int certified_max(CriticalityClass c) const;

  /// Screens a controller decision BEFORE execution; returns the level that
  /// may actually be applied (vetoes excess pruning). Logs the decision.
  int screen(std::int64_t frame, CriticalityClass c, int requested_level);

  /// Audits the level that actually EXECUTED a frame (after the provider
  /// attempted the switch; baselines may not honor it). Records violations.
  /// Returns true if the frame was safe.
  bool audit(std::int64_t frame, CriticalityClass c, int executed_level);

  /// Records a weight-integrity detection (scrub found `elements` divergent
  /// elements; `detail` names the parameter / store state).
  void record_integrity_detect(std::int64_t frame, std::int64_t elements,
                               const std::string& detail);

  /// Records a completed self-heal of `elements` elements.
  void record_integrity_repair(std::int64_t frame, std::int64_t elements,
                               const std::string& detail);

  /// Records a watchdog intervention: after consecutive deadline overruns
  /// the runner forced the certified max level for criticality `c`.
  void record_watchdog_degrade(std::int64_t frame, CriticalityClass c,
                               int from_level, int forced_level);

  std::int64_t veto_count() const { return veto_count_; }
  std::int64_t violation_count() const { return violation_count_; }
  std::int64_t audited_frames() const { return audited_frames_; }
  std::int64_t integrity_detect_count() const { return integrity_detects_; }
  std::int64_t integrity_repair_count() const { return integrity_repairs_; }
  std::int64_t watchdog_degrade_count() const { return watchdog_degrades_; }

  const std::vector<AssuranceRecord>& log() const { return log_; }
  void clear();

 private:
  SafetyConfig config_;
  std::vector<AssuranceRecord> log_;
  std::int64_t veto_count_ = 0;
  std::int64_t violation_count_ = 0;
  std::int64_t audited_frames_ = 0;
  std::int64_t integrity_detects_ = 0;
  std::int64_t integrity_repairs_ = 0;
  std::int64_t watchdog_degrades_ = 0;
};

}  // namespace rrp::core
