#include "core/weight_store.h"

#include <cstring>

#include "util/checks.h"

namespace rrp::core {

WeightStore WeightStore::snapshot(nn::Network& net) {
  WeightStore store;
  for (const auto& p : net.params()) {
    RRP_CHECK_MSG(store.golden_.find(p.name) == store.golden_.end(),
                  "duplicate parameter name '" << p.name << "'");
    store.golden_.emplace(p.name, *p.value);
  }
  return store;
}

bool WeightStore::has(const std::string& param_name) const {
  return golden_.find(param_name) != golden_.end();
}

const nn::Tensor& WeightStore::get(const std::string& param_name) const {
  auto it = golden_.find(param_name);
  RRP_CHECK_MSG(it != golden_.end(),
                "no golden weights for '" << param_name << "'");
  return it->second;
}

std::vector<std::string> WeightStore::param_names() const {
  std::vector<std::string> names;
  names.reserve(golden_.size());
  for (const auto& [name, t] : golden_) names.push_back(name);
  return names;
}

void WeightStore::flip_bit(const std::string& param_name, std::int64_t element,
                           int bit) {
  auto it = golden_.find(param_name);
  RRP_CHECK_MSG(it != golden_.end(),
                "no golden weights for '" << param_name << "'");
  RRP_CHECK(element >= 0 && element < it->second.numel());
  RRP_CHECK(bit >= 0 && bit < 32);
  float* f = it->second.raw() + element;
  std::uint32_t u;
  std::memcpy(&u, f, sizeof u);
  u ^= (1u << bit);
  std::memcpy(f, &u, sizeof u);
}

std::int64_t WeightStore::total_elements() const {
  std::int64_t n = 0;
  for (const auto& [name, t] : golden_) n += t.numel();
  return n;
}

std::int64_t WeightStore::total_bytes() const {
  return total_elements() * static_cast<std::int64_t>(sizeof(float));
}

void WeightStore::restore_all(nn::Network& net) const {
  for (auto& p : net.params()) {
    const nn::Tensor& gold = get(p.name);
    RRP_CHECK_MSG(gold.shape() == p.value->shape(),
                  "shape drift on '" << p.name << "'");
    *p.value = gold;
  }
}

void WeightStore::apply_mask(nn::Network& net,
                             const prune::NetworkMask& mask) const {
  for (auto& p : net.params()) {
    const nn::Tensor& gold = get(p.name);
    RRP_CHECK_MSG(gold.shape() == p.value->shape(),
                  "shape drift on '" << p.name << "'");
    const auto* keep = mask.find(p.name);
    if (keep == nullptr) {
      *p.value = gold;
      continue;
    }
    RRP_CHECK(static_cast<std::int64_t>(keep->size()) == gold.numel());
    auto dst = p.value->data();
    auto src = gold.data();
    for (std::size_t i = 0; i < keep->size(); ++i)
      dst[i] = (*keep)[i] ? src[i] : 0.0f;
  }
}

}  // namespace rrp::core
