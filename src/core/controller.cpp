#include "core/controller.h"

#include <algorithm>

#include "util/checks.h"
#include "util/metrics.h"

namespace rrp::core {

RuntimeController::RuntimeController(Policy& policy,
                                     InferenceProvider& provider,
                                     SafetyMonitor* monitor)
    : policy_(&policy), provider_(&provider), monitor_(monitor) {}

// rrp-frame-path: the per-frame plan/screen/execute control step — the
// decision latency the paper's deadline analysis certifies.
ControlDecision RuntimeController::step(const ControlInput& input) {
  ControlDecision d;
  const int current = provider_->current_level();
  const int max_level = provider_->level_count() - 1;

  d.requested_level =
      std::clamp(policy_->decide(input, current), 0, max_level);
  d.enforced_level = d.requested_level;
  if (monitor_ != nullptr) {
    d.enforced_level =
        monitor_->screen(input.frame, input.criticality, d.requested_level);
    d.veto = d.enforced_level != d.requested_level;
  }

  d.transition = provider_->set_level(d.enforced_level);
  static metrics::Counter& steps = metrics::counter("controller.steps");
  static metrics::Counter& vetoes = metrics::counter("controller.vetoes");
  static metrics::Counter& switches =
      metrics::counter("controller.level_switch");
  steps.add(1);
  if (d.veto) vetoes.add(1);
  if (d.transition.from_level != d.transition.to_level) {
    ++switch_count_;
    switches.add(1);
  }

  // Audit what actually executes (baselines may ignore the request).
  if (monitor_ != nullptr)
    monitor_->audit(input.frame, input.criticality,
                    provider_->current_level());
  return d;
}

void RuntimeController::reset() {
  policy_->reset();
  switch_count_ = 0;
  if (monitor_ != nullptr) monitor_->clear();
}

}  // namespace rrp::core
