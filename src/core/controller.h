// controller.h — the MAPE-K runtime controller.
//
// Monitor: the caller feeds a ControlInput per frame (criticality from the
//          perception context, deadline slack, energy budget state).
// Analyze/Plan: the Policy proposes a pruning level.
// Execute: the decision — after SafetyMonitor screening — is applied to the
//          InferenceProvider, and the transition cost is surfaced.
// Knowledge: the nested level ladder, the level profile, and the certified
//            safety ladder are the shared models the loop reasons over.
#pragma once

#include "core/policies.h"
#include "core/reversible_pruner.h"

namespace rrp::core {

/// Outcome of one control step.
struct ControlDecision {
  int requested_level = 0;   ///< what the policy wanted
  int enforced_level = 0;    ///< after safety screening
  bool veto = false;         ///< safety monitor overrode the policy
  TransitionStats transition;  ///< cost of applying the level change
};

struct ControllerConfig {
  SafetyConfig safety;
};

class RuntimeController {
 public:
  /// The controller does not own the policy or the provider; both must
  /// outlive it. Pass monitor=nullptr to run without safety screening
  /// (used by the unsupervised-ablation arm).
  RuntimeController(Policy& policy, InferenceProvider& provider,
                    SafetyMonitor* monitor);

  /// Executes one Monitor→Analyze→Plan→Execute cycle.
  ControlDecision step(const ControlInput& input);

  Policy& policy() { return *policy_; }
  InferenceProvider& provider() { return *provider_; }
  SafetyMonitor* monitor() { return monitor_; }

  std::int64_t switch_count() const { return switch_count_; }
  void reset();

 private:
  Policy* policy_;
  InferenceProvider* provider_;
  SafetyMonitor* monitor_;
  std::int64_t switch_count_ = 0;
};

}  // namespace rrp::core
