// level_train.h — shared-weight co-training of the level ladder.
//
// Masks are computed once on the dense-trained weights; co-training then
// fine-tunes the SHARED weights while cycling mini-batches through the
// levels (slimmable-network style):
//     stash → apply mask_k → forward/backward → unstash → SGD step.
// Masked elements do not participate in the masked forward pass but still
// receive their dense-gradient update (straight-through), so every level's
// sub-network stays accurate with one weight tensor — the property that
// makes O(Δ) reversible switching possible without per-level weights.
//
// Limitation (documented): BatchNorm statistics are shared across levels;
// per-level BN would add accuracy at the cost of per-level state.
#pragma once

#include "nn/train.h"
#include "prune/levels.h"

namespace rrp::core {

struct CoTrainConfig {
  int epochs = 4;
  nn::SgdConfig sgd = {.lr = 0.008f,
                       .momentum = 0.9f,
                       .weight_decay = 1e-4f,
                       .batch_size = 32,
                       .epochs = 1,       // driven per-epoch by co_train
                       .lr_decay = 1.0f,  // decay handled across co-epochs
                       .freeze_zeros = false};
  float lr_decay_per_epoch = 0.75f;
  /// Probability mass of sampling level 0 (full network) per batch; the
  /// remaining mass is uniform over pruned levels.  Level 0 needs extra
  /// weight or dense accuracy erodes while sub-levels improve.
  double level0_weight = 0.34;
};

/// Per-(epoch, level) accuracy trace of a co-training run.
struct CoTrainStats {
  std::vector<double> final_level_accuracy;  ///< eval accuracy per level
};

/// Fine-tunes `net` in place so that EVERY level of `levels` performs well
/// with shared weights.  `levels` must have been built for `net`.
CoTrainStats co_train_levels(nn::Network& net,
                             const prune::PruneLevelLibrary& levels,
                             const nn::Dataset& train_data,
                             const nn::Dataset& eval_data,
                             const CoTrainConfig& config, Rng& rng);

}  // namespace rrp::core
