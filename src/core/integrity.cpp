#include "core/integrity.h"

#include <cstring>

#include "util/checks.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace rrp::core {

std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t tensor_digest(const nn::Tensor& t) {
  return fnv1a64(t.raw(), sizeof(float) * static_cast<std::size_t>(t.numel()));
}

std::int64_t ScrubReport::diverged_elements() const {
  std::int64_t n = 0;
  for (const IntegrityFinding& f : findings) n += f.diverged_elements;
  return n;
}

bool ScrubReport::store_corrupt() const {
  for (const IntegrityFinding& f : findings)
    if (f.store_corrupt) return true;
  return false;
}

IntegrityChecker::IntegrityChecker(const WeightStore& store) : store_(&store) {
  for (const std::string& name : store.param_names())
    digests_.emplace(name, tensor_digest(store.get(name)));
}

std::uint64_t IntegrityChecker::digest(const std::string& param) const {
  auto it = digests_.find(param);
  RRP_CHECK_MSG(it != digests_.end(), "no digest for '" << param << "'");
  return it->second;
}

namespace {

/// Bit-level equality: a flipped NaN payload or signed zero must count as
/// divergence, so memcmp semantics (not float ==) are required.
inline bool same_bits(float a, float b) {
  std::uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

}  // namespace

// rrp-frame-path: the periodic bit-level scrub runs on the mission
// loop's scrub cadence inside the frame budget (DESIGN.md invariant 10).
ScrubReport IntegrityChecker::scrub(nn::Network& net,
                                    const prune::NetworkMask& mask) const {
  RRP_SPAN_VAR(span, "integrity.scrub");
  ScrubReport report;
  for (auto& p : net.params()) {
    const nn::Tensor& gold = store_->get(p.name);
    RRP_CHECK_MSG(gold.shape() == p.value->shape(),
                  "shape drift on '" << p.name << "'");
    const bool store_ok = tensor_digest(gold) == digest(p.name);
    const auto* keep = mask.find(p.name);
    const float* live = p.value->raw();
    const float* src = gold.raw();
    const std::int64_t n = gold.numel();
    report.elements_checked += n;

    IntegrityFinding finding;
    finding.store_corrupt = !store_ok;
    for (std::int64_t i = 0; i < n; ++i) {
      const float expect =
          (keep != nullptr && !(*keep)[static_cast<std::size_t>(i)])
              ? 0.0f
              : src[i];
      if (!same_bits(live[i], expect)) {
        if (finding.first_index < 0) finding.first_index = i;
        ++finding.diverged_elements;
      }
    }
    if (finding.diverged_elements > 0 || finding.store_corrupt) {
      // Populate the name only on the detection path: the clean-scrub
      // fast path must not copy a std::string per parameter.
      finding.param = p.name;
      // rrp-lint-allow(frame-path-alloc): detection path only — corruption was found, the frame yields to recovery and the report is bounded by the parameter count.
      report.findings.push_back(std::move(finding));
    }
  }
  static metrics::Counter& scrubs = metrics::counter("integrity.scrubs");
  static metrics::Counter& elems = metrics::counter("integrity.scrub_elems");
  static metrics::Counter& found = metrics::counter("integrity.findings");
  scrubs.add(1);
  elems.add(report.elements_checked);
  found.add(static_cast<std::int64_t>(report.findings.size()));
  span.add_items(report.elements_checked);
  return report;
}

// rrp-frame-path: the O(Δ) self-heal runs inside the frame that
// detected corruption (time-to-recovery is a certified SLO).
RepairReport IntegrityChecker::repair(nn::Network& net,
                                      const prune::NetworkMask& mask,
                                      const ScrubReport& report) const {
  RRP_SPAN_VAR(span, "integrity.heal");
  RepairReport out;
  if (report.clean()) return out;
  for (auto& p : net.params()) {
    const IntegrityFinding* finding = nullptr;
    for (const IntegrityFinding& f : report.findings)
      if (f.param == p.name) {
        finding = &f;
        break;
      }
    if (finding == nullptr) continue;
    if (finding->store_corrupt) {
      // The golden copy itself diverged from its snapshot digest: copying
      // from it would launder the corruption into "repaired" state.
      // rrp-lint-allow(frame-path-alloc): store-corrupt exceptional path — the run is already degrading, and the list is bounded by the parameter count.
      out.unrepairable.push_back(p.name);
      continue;
    }
    if (finding->diverged_elements == 0) continue;
    const nn::Tensor& gold = store_->get(p.name);
    const auto* keep = mask.find(p.name);
    float* live = p.value->raw();
    const float* src = gold.raw();
    const std::int64_t n = gold.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float expect =
          (keep != nullptr && !(*keep)[static_cast<std::size_t>(i)])
              ? 0.0f
              : src[i];
      if (!same_bits(live[i], expect)) {
        live[i] = expect;
        ++out.elements_repaired;
      }
    }
  }
  out.bytes_written =
      out.elements_repaired * static_cast<std::int64_t>(sizeof(float));
  static metrics::Counter& elems = metrics::counter("integrity.heal_elems");
  static metrics::Counter& bytes = metrics::counter("integrity.heal_bytes");
  elems.add(out.elements_repaired);
  bytes.add(out.bytes_written);
  span.add_items(out.elements_repaired);
  return out;
}

RepairReport IntegrityChecker::scrub_and_repair(nn::Network& net,
                                                const prune::NetworkMask& mask,
                                                ScrubReport* out_scrub) const {
  const ScrubReport report = scrub(net, mask);
  const RepairReport repaired = repair(net, mask, report);
  if (out_scrub != nullptr) *out_scrub = report;
  return repaired;
}

}  // namespace rrp::core
