#include "core/flight_recorder.h"

#include <bit>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/integrity.h"
#include "util/checks.h"
#include "util/csv.h"
#include "util/trace.h"

namespace rrp::core {
namespace {

// ---------------------------------------------------------------------------
// Binary encoding: explicit little-endian, appended to a std::string so the
// whole body can be FNV-1a-checksummed before it reaches the stream.
// ---------------------------------------------------------------------------

void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& b, std::int64_t v) {
  put_u64(b, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& b, double v) {
  put_u64(b, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.append(s);
}

/// Bounds-checked read cursor over the deserialized body.
struct Cursor {
  const std::string& buf;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > buf.size())
      throw SerializationError("incident bundle truncated");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    pos += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
};

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  RRP_CHECK_MSG(capacity_ > 0, "flight recorder needs capacity >= 1");
  ring_.reserve(capacity_);
}

// rrp-frame-path: the black-box append runs once per frame; it must
// never become the reason a deadline slips.
void FlightRecorder::record(const FlightRecord& r) {
  if (ring_.size() < capacity_) {
    // rrp-lint-allow(frame-path-alloc): push_back below the capacity reserved in the constructor never reallocates; once full, the ring branch below overwrites in place.
    ring_.push_back(r);
  } else {
    ring_[next_] = r;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<FlightRecord> FlightRecorder::window() const {
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

void FlightRecorder::clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

// ---------------------------------------------------------------------------
// Bundle serialization
// ---------------------------------------------------------------------------

void write_incident_bundle(const IncidentBundle& bundle, std::ostream& out) {
  std::string b;
  put_u32(b, kIncidentBundleMagic);
  put_u32(b, kIncidentBundleVersion);

  const IncidentContext& c = bundle.context;
  put_str(b, c.model);
  put_str(b, c.suite);
  put_str(b, c.policy);
  put_str(b, c.provider);
  put_i32(b, c.frames);
  put_u64(b, c.scenario_seed);
  put_u64(b, c.noise_seed);
  put_f64(b, c.deadline_ms);
  put_i32(b, c.hysteresis);
  put_i32(b, c.scrub_period_frames);
  put_i32(b, c.watchdog_overrun_frames);
  put_i32(b, c.sensing_delay_frames);
  put_u32(b, (c.self_heal ? 1u : 0u) | (c.trace_enabled ? 2u : 0u));
  for (std::int32_t lvl : c.certified) put_i32(b, lvl);
  put_u32(b, c.recorder_capacity);
  put_u64(b, c.telemetry_digest);

  put_u32(b, static_cast<std::uint32_t>(bundle.faults.size()));
  for (const RecordedFault& f : bundle.faults) {
    put_i32(b, f.kind);
    put_i64(b, f.frame);
    put_i32(b, f.duration_frames);
    put_f64(b, f.magnitude);
    put_u64(b, f.target);
    put_i32(b, f.bit);
    put_i32(b, f.stuck);
    put_i32(b, f.count);
  }

  put_u32(b, static_cast<std::uint32_t>(bundle.slos.size()));
  for (const SloSpec& s : bundle.slos) {
    put_str(b, s.id);
    put_i32(b, static_cast<std::int32_t>(s.kind));
    put_str(b, s.numerator);
    put_str(b, s.denominator);
    put_str(b, s.histogram);
    put_f64(b, s.quantile);
    put_f64(b, s.threshold);
    put_i64(b, s.min_samples);
  }

  put_u32(b, static_cast<std::uint32_t>(bundle.incidents.size()));
  for (const Incident& inc : bundle.incidents) {
    put_i64(b, inc.frame);
    put_str(b, inc.slo_id);
    put_f64(b, inc.observed);
    put_f64(b, inc.threshold);
    put_str(b, inc.detail);
  }
  put_i64(b, bundle.dropped_incidents);

  put_u32(b, static_cast<std::uint32_t>(bundle.records.size()));
  for (const FlightRecord& r : bundle.records) {
    put_i64(b, r.frame);
    put_i32(b, r.criticality);
    put_i32(b, r.true_criticality);
    put_i32(b, r.requested_level);
    put_i32(b, r.executed_level);
    put_f64(b, r.latency_ms);
    put_f64(b, r.switch_us);
    put_f64(b, r.deadline_ms);
    put_f64(b, r.energy_mj);
    put_u32(b, r.flags);
    put_i32(b, r.integrity_detects);
    put_i32(b, r.integrity_repairs);
    put_i32(b, r.watchdog_degrades);
    put_u64(b, r.span_digest);
  }

  put_u64(b, fnv1a64(b.data(), b.size()));  // trailing checksum
  out.write(b.data(), static_cast<std::streamsize>(b.size()));
}

IncidentBundle read_incident_bundle(std::istream& in) {
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string buf = raw.str();
  if (buf.size() < 16) throw SerializationError("incident bundle truncated");

  // Verify the trailing checksum over everything before it first: a single
  // flipped byte anywhere fails fast with an unambiguous message.
  const std::string body = buf.substr(0, buf.size() - 8);
  Cursor tail{buf, buf.size() - 8};
  const std::uint64_t want = tail.u64();
  const std::uint64_t got = fnv1a64(body.data(), body.size());
  if (want != got)
    throw SerializationError("incident bundle checksum mismatch (expected " +
                             hex64(want) + ", computed " + hex64(got) + ")");

  Cursor c{body, 0};
  if (c.u32() != kIncidentBundleMagic)
    throw SerializationError("not an incident bundle (bad magic)");
  const std::uint32_t version = c.u32();
  if (version != kIncidentBundleVersion)
    throw SerializationError("unsupported incident bundle version " +
                             std::to_string(version));

  IncidentBundle bundle;
  IncidentContext& ctx = bundle.context;
  ctx.model = c.str();
  ctx.suite = c.str();
  ctx.policy = c.str();
  ctx.provider = c.str();
  ctx.frames = c.i32();
  ctx.scenario_seed = c.u64();
  ctx.noise_seed = c.u64();
  ctx.deadline_ms = c.f64();
  ctx.hysteresis = c.i32();
  ctx.scrub_period_frames = c.i32();
  ctx.watchdog_overrun_frames = c.i32();
  ctx.sensing_delay_frames = c.i32();
  const std::uint32_t bits = c.u32();
  ctx.self_heal = (bits & 1u) != 0;
  ctx.trace_enabled = (bits & 2u) != 0;
  for (std::int32_t& lvl : ctx.certified) lvl = c.i32();
  ctx.recorder_capacity = c.u32();
  ctx.telemetry_digest = c.u64();

  const std::uint32_t n_faults = c.u32();
  bundle.faults.resize(n_faults);
  for (RecordedFault& f : bundle.faults) {
    f.kind = c.i32();
    f.frame = c.i64();
    f.duration_frames = c.i32();
    f.magnitude = c.f64();
    f.target = c.u64();
    f.bit = c.i32();
    f.stuck = c.i32();
    f.count = c.i32();
  }

  const std::uint32_t n_slos = c.u32();
  bundle.slos.resize(n_slos);
  for (SloSpec& s : bundle.slos) {
    s.id = c.str();
    s.kind = static_cast<SloKind>(c.i32());
    s.numerator = c.str();
    s.denominator = c.str();
    s.histogram = c.str();
    s.quantile = c.f64();
    s.threshold = c.f64();
    s.min_samples = c.i64();
  }

  const std::uint32_t n_inc = c.u32();
  bundle.incidents.resize(n_inc);
  for (Incident& inc : bundle.incidents) {
    inc.frame = c.i64();
    inc.slo_id = c.str();
    inc.observed = c.f64();
    inc.threshold = c.f64();
    inc.detail = c.str();
  }
  bundle.dropped_incidents = c.i64();

  const std::uint32_t n_rec = c.u32();
  bundle.records.resize(n_rec);
  for (FlightRecord& r : bundle.records) {
    r.frame = c.i64();
    r.criticality = c.i32();
    r.true_criticality = c.i32();
    r.requested_level = c.i32();
    r.executed_level = c.i32();
    r.latency_ms = c.f64();
    r.switch_us = c.f64();
    r.deadline_ms = c.f64();
    r.energy_mj = c.f64();
    r.flags = c.u32();
    r.integrity_detects = c.i32();
    r.integrity_repairs = c.i32();
    r.watchdog_degrades = c.i32();
    r.span_digest = c.u64();
  }
  if (c.pos != body.size())
    throw SerializationError("incident bundle has trailing bytes");
  return bundle;
}

// ---------------------------------------------------------------------------
// CSV + summary rendering
// ---------------------------------------------------------------------------

void write_incident_csv(const IncidentBundle& bundle, std::ostream& out) {
  CsvWriter w(out);
  w.header({"frame", "criticality", "true_criticality", "requested_level",
            "executed_level", "latency_ms", "switch_us", "deadline_ms",
            "slack_ms", "energy_mj", "correct", "veto", "violation",
            "true_violation", "integrity_detects", "integrity_repairs",
            "watchdog_degrades", "span_digest"});
  for (const FlightRecord& r : bundle.records) {
    w.row({std::to_string(r.frame), std::to_string(r.criticality),
           std::to_string(r.true_criticality),
           std::to_string(r.requested_level),
           std::to_string(r.executed_level), CsvWriter::num(r.latency_ms, 4),
           CsvWriter::num(r.switch_us, 2), CsvWriter::num(r.deadline_ms, 2),
           CsvWriter::num(r.slack_ms(), 4), CsvWriter::num(r.energy_mj, 4),
           std::to_string(r.correct() ? 1 : 0),
           std::to_string(r.veto() ? 1 : 0),
           std::to_string(r.violation() ? 1 : 0),
           std::to_string(r.true_violation() ? 1 : 0),
           std::to_string(r.integrity_detects),
           std::to_string(r.integrity_repairs),
           std::to_string(r.watchdog_degrades), hex64(r.span_digest)});
  }
}

std::string incident_csv_string(const IncidentBundle& bundle) {
  std::ostringstream os;
  write_incident_csv(bundle, os);
  return os.str();
}

std::string incident_summary_string(const IncidentBundle& bundle) {
  const IncidentContext& c = bundle.context;
  std::ostringstream os;
  os << "incident bundle v" << kIncidentBundleVersion << "\n"
     << "  model=" << c.model << " suite=" << c.suite << " policy=" << c.policy
     << " provider=" << c.provider << "\n"
     << "  frames=" << c.frames << " scenario_seed=" << c.scenario_seed
     << " noise_seed=" << c.noise_seed << "\n"
     << "  deadline_ms=" << CsvWriter::num(c.deadline_ms, 2)
     << " hysteresis=" << c.hysteresis << " scrub=" << c.scrub_period_frames
     << " watchdog=" << c.watchdog_overrun_frames
     << " sensing_delay=" << c.sensing_delay_frames
     << " self_heal=" << (c.self_heal ? 1 : 0)
     << " trace=" << (c.trace_enabled ? 1 : 0) << "\n"
     << "  certified=[";
  for (std::size_t i = 0; i < c.certified.size(); ++i)
    os << (i ? "," : "") << c.certified[i];
  os << "] recorder_capacity=" << c.recorder_capacity
     << " telemetry_digest=0x" << hex64(c.telemetry_digest) << "\n"
     << "  faults=" << bundle.faults.size() << " slos=" << bundle.slos.size()
     << " incidents=" << bundle.incidents.size();
  if (bundle.dropped_incidents > 0)
    os << " (+" << bundle.dropped_incidents << " dropped)";
  os << " window=" << bundle.records.size() << " records\n";
  for (const Incident& inc : bundle.incidents)
    os << "  incident frame=" << inc.frame << " id=" << inc.slo_id
       << " observed=" << CsvWriter::num(inc.observed, 6)
       << " threshold=" << CsvWriter::num(inc.threshold, 6)
       << (inc.detail.empty() ? "" : " (" + inc.detail + ")") << "\n";
  if (!bundle.records.empty()) {
    const FlightRecord* worst = &bundle.records.front();
    for (const FlightRecord& r : bundle.records)
      if (r.slack_ms() < worst->slack_ms()) worst = &r;
    os << "  window frames [" << bundle.records.front().frame << ", "
       << bundle.records.back().frame << "], worst slack "
       << CsvWriter::num(worst->slack_ms(), 4) << " ms at frame "
       << worst->frame << "\n";
  }
  return os.str();
}

std::uint64_t span_window_digest(std::size_t from_index) {
  const std::vector<trace::SpanRecord>& all = trace::spans();
  if (from_index >= all.size()) return 0;
  std::string b;
  for (std::size_t i = from_index; i < all.size(); ++i) {
    const trace::SpanRecord& s = all[i];
    put_str(b, s.name);
    put_i32(b, s.depth);
    put_i64(b, s.frame);
    put_i64(b, s.begin_seq);
    put_i64(b, s.end_seq);
    put_f64(b, s.modeled_us);
    put_i64(b, s.items);
  }
  return fnv1a64(b.data(), b.size());
}

}  // namespace rrp::core
