// assurance_export.h — machine-readable safety-case evidence.
//
// A certification workflow wants the run's safety evidence as a structured
// artifact, not a console table: the certified ladder, the run summary
// (both sensed- and true-basis violation counts), and the full assurance
// log of vetoes/violations.  Exported as JSON (self-contained writer — no
// external dependency), stable key order for diffable evidence files.
#pragma once

#include <iosfwd>
#include <string>

#include "core/safety_monitor.h"
#include "core/telemetry.h"

namespace rrp::core {

/// Everything a safety case cites about one closed-loop run.
struct AssuranceReport {
  std::string scenario;
  std::string provider;
  std::string policy;
  SafetyConfig certified;
  RunSummary summary;
  std::vector<AssuranceRecord> log;
};

/// Writes the report as pretty-printed JSON.
void write_assurance_json(const AssuranceReport& report, std::ostream& out);

/// Convenience: serialize to a string (used by tests and the CLI).
std::string assurance_json(const AssuranceReport& report);

}  // namespace rrp::core
