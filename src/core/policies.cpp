#include "core/policies.h"

#include <algorithm>

#include "util/checks.h"

namespace rrp::core {

namespace {
int cap_for(const SafetyConfig& cfg, CriticalityClass c, int level_count) {
  const int cap =
      cfg.max_level_for[static_cast<std::size_t>(static_cast<int>(c))];
  return std::min(cap, level_count - 1);
}

/// Shared hysteresis step: relaxing (target < current) is immediate;
/// pruning harder (target > current) requires `k` consecutive frames
/// proposing the same-or-higher target.
int hysteresis_step(int target, int current, int k, int& frames_waiting,
                    int& pending_target) {
  if (target <= current) {
    frames_waiting = 0;
    pending_target = -1;
    return target;
  }
  if (pending_target == target) {
    ++frames_waiting;
  } else {
    pending_target = target;
    frames_waiting = 1;
  }
  if (frames_waiting >= k) {
    frames_waiting = 0;
    pending_target = -1;
    return target;
  }
  return current;
}
}  // namespace

CriticalityGreedyPolicy::CriticalityGreedyPolicy(SafetyConfig certified,
                                                 int hysteresis_frames,
                                                 int level_count)
    : certified_(certified),
      hysteresis_frames_(hysteresis_frames),
      level_count_(level_count) {
  RRP_CHECK(hysteresis_frames >= 1);
  RRP_CHECK(level_count >= 1);
}

int CriticalityGreedyPolicy::decide(const ControlInput& in,
                                    int current_level) {
  const int target = cap_for(certified_, in.criticality, level_count_);
  return hysteresis_step(target, current_level, hysteresis_frames_,
                         frames_waiting_, pending_target_);
}

void CriticalityGreedyPolicy::reset() {
  frames_waiting_ = 0;
  pending_target_ = -1;
}

DeadlinePolicy::DeadlinePolicy(LevelProfile profile, double margin)
    : profile_(std::move(profile)), margin_(margin) {
  RRP_CHECK(profile_.count() >= 1);
  RRP_CHECK(margin > 0.0 && margin <= 1.0);
}

int DeadlinePolicy::decide(const ControlInput& in, int current_level) {
  (void)current_level;
  const double budget = in.deadline_ms * margin_;
  for (int k = 0; k < profile_.count(); ++k)
    if (profile_.latency_ms[static_cast<std::size_t>(k)] <= budget) return k;
  return profile_.count() - 1;  // nothing fits; prune as hard as possible
}

HybridPolicy::HybridPolicy(SafetyConfig certified, LevelProfile profile,
                           int hysteresis_frames, double deadline_margin,
                           double energy_low_watermark)
    : certified_(certified),
      profile_(std::move(profile)),
      hysteresis_frames_(hysteresis_frames),
      deadline_margin_(deadline_margin),
      energy_low_watermark_(energy_low_watermark) {
  RRP_CHECK(profile_.count() >= 1);
  RRP_CHECK(hysteresis_frames >= 1);
  RRP_CHECK(deadline_margin > 0.0 && deadline_margin <= 1.0);
  RRP_CHECK(energy_low_watermark >= 0.0 && energy_low_watermark <= 1.0);
}

int HybridPolicy::decide(const ControlInput& in, int current_level) {
  const int count = profile_.count();
  // (a) criticality cap: the most accuracy the scene demands.
  const int crit_cap = cap_for(certified_, in.criticality, count);

  // (b) deadline: least-pruned feasible level.
  int deadline_floor = count - 1;
  const double budget = in.deadline_ms * deadline_margin_;
  for (int k = 0; k < count; ++k) {
    if (profile_.latency_ms[static_cast<std::size_t>(k)] <= budget) {
      deadline_floor = k;
      break;
    }
  }

  // (c) energy pressure: once the remaining budget dips under the
  // watermark, escalate toward the criticality cap proportionally.
  int target = std::min(crit_cap, std::max(deadline_floor, 0));
  if (in.energy_budget_frac < energy_low_watermark_) target = crit_cap;
  else if (deadline_floor < crit_cap) {
    // With deadline headroom, still use the energy-optimal (deepest
    // admissible) level when budget is below 2x watermark.
    if (in.energy_budget_frac < 2.0 * energy_low_watermark_)
      target = crit_cap;
    else
      target = std::max(deadline_floor, crit_cap > 0 ? crit_cap - 1 : 0);
  }
  target = std::min(target, crit_cap);

  return hysteresis_step(target, current_level, hysteresis_frames_,
                         frames_waiting_, pending_target_);
}

void HybridPolicy::reset() {
  frames_waiting_ = 0;
  pending_target_ = -1;
}

OraclePolicy::OraclePolicy(SafetyConfig certified,
                           std::vector<CriticalityClass> future_criticality,
                           int lookahead_frames)
    : certified_(certified),
      future_(std::move(future_criticality)),
      lookahead_(lookahead_frames) {
  RRP_CHECK(lookahead_frames >= 0);
}

int OraclePolicy::decide(const ControlInput& in, int current_level) {
  (void)current_level;
  // Worst criticality over [frame, frame + lookahead] dictates the level —
  // the oracle is already safe when the hazard arrives.
  CriticalityClass worst = in.criticality;
  const std::int64_t last = std::min(
      in.frame + lookahead_, static_cast<std::int64_t>(future_.size()) - 1);
  for (std::int64_t f = in.frame; f >= 0 && f <= last; ++f)
    worst = std::max(worst, future_[static_cast<std::size_t>(f)]);
  return cap_for(certified_, worst, 1 << 20);
}

FixedPolicy::FixedPolicy(int level)
    : name_("fixed-L" + std::to_string(level)), level_(level) {
  RRP_CHECK(level >= 0);
}

int FixedPolicy::decide(const ControlInput& in, int current_level) {
  (void)in;
  (void)current_level;
  return level_;
}

}  // namespace rrp::core
