// policies.h — level-selection policies (the "Plan" of the MAPE-K loop).
//
// A policy maps the monitored state (criticality, deadline, energy budget)
// to a desired pruning level; the SafetyMonitor then screens that desire
// against the certified ladder.  Policies are deliberately simple and
// inspectable — this is a safety-oriented runtime, not an RL agent.
#pragma once

#include <memory>

#include "core/safety_monitor.h"

namespace rrp::core {

/// Offline-profiled characteristics of each pruning level, given to
/// deadline/energy-aware policies (produced by profile_levels() in sim).
struct LevelProfile {
  std::vector<double> latency_ms;  ///< per level, batch-1 inference
  std::vector<double> energy_mj;   ///< per level, batch-1 inference
  std::vector<double> accuracy;    ///< per level, validation accuracy

  int count() const { return static_cast<int>(latency_ms.size()); }
};

/// Everything the controller monitors about one frame, before inference.
struct ControlInput {
  std::int64_t frame = 0;
  CriticalityClass criticality = CriticalityClass::Low;
  double deadline_ms = 10.0;         ///< per-frame latency budget
  double energy_budget_frac = 1.0;   ///< remaining fraction of energy budget
};

/// Base class for level-selection policies.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual const std::string& name() const = 0;
  /// Proposes a level for this frame (pre-safety-screening).
  virtual int decide(const ControlInput& in, int current_level) = 0;
  virtual void reset() {}
};

/// Criticality-greedy with hysteresis: always run at the maximum level the
/// criticality class admits (maximum savings), but require
/// `hysteresis_frames` consecutive frames of headroom before pruning
/// HARDER; relaxing (restoring accuracy) is immediate — that asymmetry is
/// the safety-critical direction.
class CriticalityGreedyPolicy : public Policy {
 public:
  CriticalityGreedyPolicy(SafetyConfig certified, int hysteresis_frames,
                          int level_count);

  const std::string& name() const override { return name_; }
  int decide(const ControlInput& in, int current_level) override;
  void reset() override;

 private:
  std::string name_ = "criticality-greedy";
  SafetyConfig certified_;
  int hysteresis_frames_;
  int level_count_;
  int frames_waiting_ = 0;
  int pending_target_ = -1;
};

/// Deadline-first: the least-pruned level whose profiled latency fits the
/// frame deadline (ignores criticality — used in the ablation).
class DeadlinePolicy : public Policy {
 public:
  DeadlinePolicy(LevelProfile profile, double margin = 0.9);

  const std::string& name() const override { return name_; }
  int decide(const ControlInput& in, int current_level) override;

 private:
  std::string name_ = "deadline";
  LevelProfile profile_;
  double margin_;
};

/// Hybrid: criticality cap + deadline feasibility + energy pressure.
/// Picks the least-pruned level that (a) respects the criticality cap is
/// NOT enforced here (the SafetyMonitor does that), (b) meets the frame
/// deadline, and (c) when the energy budget runs low, escalates pruning
/// proportionally.  Upward (more pruning) moves go through hysteresis.
class HybridPolicy : public Policy {
 public:
  HybridPolicy(SafetyConfig certified, LevelProfile profile,
               int hysteresis_frames, double deadline_margin = 0.9,
               double energy_low_watermark = 0.25);

  const std::string& name() const override { return name_; }
  int decide(const ControlInput& in, int current_level) override;
  void reset() override;

 private:
  std::string name_ = "hybrid";
  SafetyConfig certified_;
  LevelProfile profile_;
  int hysteresis_frames_;
  double deadline_margin_;
  double energy_low_watermark_;
  int frames_waiting_ = 0;
  int pending_target_ = -1;
};

/// Oracle: sees the future criticality trace and restores BEFORE hazards
/// materialize; upper-bounds what any causal policy can achieve.
class OraclePolicy : public Policy {
 public:
  OraclePolicy(SafetyConfig certified,
               std::vector<CriticalityClass> future_criticality,
               int lookahead_frames);

  const std::string& name() const override { return name_; }
  int decide(const ControlInput& in, int current_level) override;

 private:
  std::string name_ = "oracle";
  SafetyConfig certified_;
  std::vector<CriticalityClass> future_;
  int lookahead_;
};

/// No adaptation at all: always proposes `level` (NoPrune == level 0).
class FixedPolicy : public Policy {
 public:
  explicit FixedPolicy(int level);
  const std::string& name() const override { return name_; }
  int decide(const ControlInput& in, int current_level) override;

 private:
  std::string name_;
  int level_;
};

}  // namespace rrp::core
