#include "core/metrics_export.h"

#include <sstream>

#include "util/checks.h"
#include "util/csv.h"
#include "util/metrics.h"

namespace rrp::core {

namespace {

std::string sanitize_base(const std::string& base) {
  // '.' is the repo's metric namespace separator; Prometheus names allow
  // [a-zA-Z0-9_:] only.
  std::string out = base;
  for (char& c : out)
    if (c == '.') c = '_';
  return out;
}

std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key = "", const std::string& extra_value = "") {
  // Labels are already sorted by MetricDomain; `extra` (the histogram
  // `le`) is appended last so bucket rows group per series.
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + metrics::escape_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

void type_line(std::ostream& out, std::string& last_family,
               const std::string& family, const char* type) {
  // Sorted key iteration can interleave families ("a.b" sorts between
  // "a" and "a{…}"), so track the last family per kind block and emit
  // the TYPE line on every change — still one line per contiguous run,
  // deterministic because the key order is.
  if (family == last_family) return;
  last_family = family;
  out << "# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

ParsedMetricName parse_labeled_name(const std::string& name) {
  ParsedMetricName parsed;
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    parsed.base = name;
    return parsed;
  }
  if (name.back() != '}')
    throw SerializationError("unterminated label block in '" + name + "'");
  parsed.base = name.substr(0, brace);
  std::size_t i = brace + 1;
  const std::size_t end = name.size() - 1;  // the closing '}'
  while (i < end) {
    const std::size_t eq = name.find('=', i);
    if (eq == std::string::npos || eq + 1 >= end || name[eq + 1] != '"')
      throw SerializationError("malformed label in '" + name + "'");
    const std::string key = name.substr(i, eq - i);
    std::string value;
    std::size_t j = eq + 2;
    for (; j < end && name[j] != '"'; ++j) {
      char c = name[j];
      if (c == '\\' && j + 1 < end) {
        const char next = name[++j];
        c = next == 'n' ? '\n' : next;
      }
      value += c;
    }
    if (j >= end)
      throw SerializationError("unterminated label value in '" + name + "'");
    parsed.labels.emplace_back(key, value);
    i = j + 1;  // past the closing quote
    if (i < end) {
      if (name[i] != ',')
        throw SerializationError("malformed label block in '" + name + "'");
      ++i;
    }
  }
  return parsed;
}

std::string prometheus_exposition() {
  std::ostringstream out;
  const metrics::Registry& reg = metrics::Registry::instance();

  std::string last_family;
  for (const auto& [name, c] : reg.counters()) {
    const ParsedMetricName p = parse_labeled_name(name);
    const std::string family = sanitize_base(p.base);
    type_line(out, last_family, family, "counter");
    out << family << render_labels(p.labels) << ' ' << c->value() << '\n';
  }

  last_family.clear();
  for (const auto& [name, g] : reg.gauges()) {
    const ParsedMetricName p = parse_labeled_name(name);
    const std::string family = sanitize_base(p.base);
    type_line(out, last_family, family, "gauge");
    out << family << render_labels(p.labels) << ' '
        << CsvWriter::num(g->value(), 9) << '\n';
  }

  last_family.clear();
  for (const auto& [name, h] : reg.histograms()) {
    const ParsedMetricName p = parse_labeled_name(name);
    const std::string family = sanitize_base(p.base);
    type_line(out, last_family, family, "histogram");
    const std::vector<double>& bounds = h->bounds();
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += h->bucket_count(i);
      out << family << "_bucket"
          << render_labels(p.labels, "le", fmt(bounds[i], 6)) << ' ' << cum
          << '\n';
    }
    cum += h->bucket_count(bounds.size());
    out << family << "_bucket" << render_labels(p.labels, "le", "+Inf") << ' '
        << cum << '\n';
    out << family << "_count" << render_labels(p.labels) << ' ' << cum << '\n';
  }
  return out.str();
}

}  // namespace rrp::core
