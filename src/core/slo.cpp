#include "core/slo.h"

#include <limits>
#include <sstream>

#include "util/checks.h"

namespace rrp::core {

const char* slo_kind_name(SloKind k) {
  switch (k) {
    case SloKind::RatioMax: return "ratio_max";
    case SloKind::HistogramQuantileMax: return "histogram_quantile_max";
  }
  return "?";
}

double histogram_quantile(const metrics::Histogram& h, double q) {
  RRP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::int64_t total = h.total();
  if (total == 0) return 0.0;
  // Smallest rank that covers the q-fraction; rank total at q == 1.
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    q * static_cast<double>(total) + 0.999999));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < h.bounds().size(); ++i) {
    cum += h.bucket_count(i);
    if (cum >= rank) return h.bounds()[i];
  }
  return std::numeric_limits<double>::infinity();  // overflow bucket
}

SloMonitor::SloMonitor(std::vector<SloSpec> specs)
    : specs_(std::move(specs)), fired_(specs_.size(), false) {
  for (const SloSpec& s : specs_)
    RRP_CHECK_MSG(!s.id.empty(), "SloSpec needs a non-empty id");
}

void SloMonitor::push(Incident incident) {
  if (incidents_.size() >= kMaxIncidents) {
    ++dropped_;
    return;
  }
  incidents_.push_back(std::move(incident));
}

void SloMonitor::evaluate(std::int64_t frame) {
  metrics::Registry& reg = metrics::Registry::instance();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (fired_[i]) continue;
    const SloSpec& s = specs_[i];
    double observed = 0.0;
    std::ostringstream detail;
    switch (s.kind) {
      case SloKind::RatioMax: {
        const std::int64_t den = reg.counter(s.denominator).value();
        if (den < s.min_samples) continue;
        const std::int64_t num = reg.counter(s.numerator).value();
        observed = static_cast<double>(num) / static_cast<double>(den);
        detail << s.numerator << "/" << s.denominator << " = " << num << "/"
               << den;
        break;
      }
      case SloKind::HistogramQuantileMax: {
        const metrics::Histogram& h = reg.histogram(s.histogram);
        if (h.total() < s.min_samples) continue;
        observed = histogram_quantile(h, s.quantile);
        detail << "p" << static_cast<int>(s.quantile * 100.0) << "("
               << s.histogram << ") over " << h.total() << " samples";
        break;
      }
    }
    if (observed > s.threshold) {
      fired_[i] = true;
      Incident inc;
      inc.frame = frame;
      inc.slo_id = s.id;
      inc.observed = observed;
      inc.threshold = s.threshold;
      inc.detail = detail.str();
      push(std::move(inc));
    }
  }
}

void SloMonitor::note_event(std::int64_t frame, const std::string& id,
                            double observed, const std::string& detail) {
  Incident inc;
  inc.frame = frame;
  inc.slo_id = id;
  inc.observed = observed;
  inc.threshold = 0.0;
  inc.detail = detail;
  push(std::move(inc));
}

void SloMonitor::clear() {
  fired_.assign(specs_.size(), false);
  incidents_.clear();
  dropped_ = 0;
}

std::vector<SloSpec> standard_slos() {
  std::vector<SloSpec> v;
  {
    SloSpec s;
    s.id = "slo.deadline_miss_rate";
    s.kind = SloKind::RatioMax;
    s.numerator = "runner.deadline_misses";
    s.denominator = "runner.frames";
    s.threshold = 0.05;
    s.min_samples = 50;
    v.push_back(s);
  }
  {
    SloSpec s;
    s.id = "slo.recovery_latency_p99_us";
    s.kind = SloKind::HistogramQuantileMax;
    s.histogram = "prune.switch_us";
    s.quantile = 0.99;
    s.threshold = 20000.0;
    s.min_samples = 5;
    v.push_back(s);
  }
  {
    SloSpec s;
    s.id = "slo.scrub_detect_latency_p99_frames";
    s.kind = SloKind::HistogramQuantileMax;
    s.histogram = "integrity.detect_latency_frames";
    s.quantile = 0.99;
    s.threshold = 50.0;
    s.min_samples = 1;
    v.push_back(s);
  }
  return v;
}

}  // namespace rrp::core
