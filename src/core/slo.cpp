#include "core/slo.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "util/checks.h"

namespace rrp::core {

const char* slo_kind_name(SloKind k) {
  switch (k) {
    case SloKind::RatioMax: return "ratio_max";
    case SloKind::HistogramQuantileMax: return "histogram_quantile_max";
  }
  return "?";
}

double histogram_quantile(const metrics::Histogram& h, double q) {
  RRP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::int64_t total = h.total();
  if (total == 0) return 0.0;
  // Smallest rank that covers the q-fraction; rank total at q == 1.
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    q * static_cast<double>(total) + 0.999999));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < h.bounds().size(); ++i) {
    cum += h.bucket_count(i);
    if (cum >= rank) return h.bounds()[i];
  }
  return std::numeric_limits<double>::infinity();  // overflow bucket
}

SloMonitor::SloMonitor(std::vector<SloSpec> specs)
    : specs_(std::move(specs)), fired_(specs_.size(), false) {
  for (const SloSpec& s : specs_)
    RRP_CHECK_MSG(!s.id.empty(), "SloSpec needs a non-empty id");
}

void SloMonitor::push(Incident incident) {
  if (incidents_.size() >= kMaxIncidents) {
    ++dropped_;
    return;
  }
  incidents_.push_back(std::move(incident));
}

void SloMonitor::evaluate(std::int64_t frame) {
  metrics::Registry& reg = metrics::Registry::instance();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (fired_[i]) continue;
    const SloSpec& s = specs_[i];
    double observed = 0.0;
    std::ostringstream detail;
    switch (s.kind) {
      case SloKind::RatioMax: {
        const std::int64_t den = reg.counter(s.denominator).value();
        if (den < s.min_samples) continue;
        const std::int64_t num = reg.counter(s.numerator).value();
        observed = static_cast<double>(num) / static_cast<double>(den);
        detail << s.numerator << "/" << s.denominator << " = " << num << "/"
               << den;
        break;
      }
      case SloKind::HistogramQuantileMax: {
        const metrics::Histogram& h = reg.histogram(s.histogram);
        if (h.total() < s.min_samples) continue;
        observed = histogram_quantile(h, s.quantile);
        detail << "p" << static_cast<int>(s.quantile * 100.0) << "("
               << s.histogram << ") over " << h.total() << " samples";
        break;
      }
    }
    if (observed > s.threshold) {
      fired_[i] = true;
      Incident inc;
      inc.frame = frame;
      inc.slo_id = s.id;
      inc.observed = observed;
      inc.threshold = s.threshold;
      inc.detail = detail.str();
      push(std::move(inc));
    }
  }
}

void SloMonitor::note_event(std::int64_t frame, const std::string& id,
                            double observed, const std::string& detail) {
  Incident inc;
  inc.frame = frame;
  inc.slo_id = id;
  inc.observed = observed;
  inc.threshold = 0.0;
  inc.detail = detail;
  push(std::move(inc));
}

void SloMonitor::clear() {
  fired_.assign(specs_.size(), false);
  incidents_.clear();
  dropped_ = 0;
}

std::vector<SloSpec> standard_slos() {
  std::vector<SloSpec> v;
  {
    SloSpec s;
    s.id = "slo.deadline_miss_rate";
    s.kind = SloKind::RatioMax;
    s.numerator = "runner.deadline_misses";
    s.denominator = "runner.frames";
    s.threshold = 0.05;
    s.min_samples = 50;
    v.push_back(s);
  }
  {
    SloSpec s;
    s.id = "slo.recovery_latency_p99_us";
    s.kind = SloKind::HistogramQuantileMax;
    s.histogram = "prune.switch_us";
    s.quantile = 0.99;
    s.threshold = 20000.0;
    s.min_samples = 5;
    v.push_back(s);
  }
  {
    SloSpec s;
    s.id = "slo.scrub_detect_latency_p99_frames";
    s.kind = SloKind::HistogramQuantileMax;
    s.histogram = "integrity.detect_latency_frames";
    s.quantile = 0.99;
    s.threshold = 50.0;
    s.min_samples = 1;
    v.push_back(s);
  }
  return v;
}

BurnRateTracker::BurnRateTracker(BurnRateConfig cfg) : cfg_(std::move(cfg)) {
  RRP_CHECK_MSG(!cfg_.id.empty(), "BurnRateConfig needs a non-empty id");
  RRP_CHECK_MSG(cfg_.budget > 0.0, "error budget must be positive");
  RRP_CHECK_MSG(cfg_.fast_window >= 1 && cfg_.slow_window >= cfg_.fast_window,
                "windows must satisfy 1 <= fast_window <= slow_window");
  window_.reserve(static_cast<std::size_t>(cfg_.slow_window));
}

const BurnRateState& BurnRateTracker::update(std::int64_t tick,
                                             std::int64_t num_total,
                                             std::int64_t den_total) {
  window_.emplace_back(num_total - last_num_, den_total - last_den_);
  last_num_ = num_total;
  last_den_ = den_total;
  if (window_.size() > static_cast<std::size_t>(cfg_.slow_window))
    window_.erase(window_.begin());

  const auto window_burn = [this](std::size_t ticks, std::int64_t* samples) {
    std::int64_t num = 0, den = 0;
    const std::size_t n = std::min(ticks, window_.size());
    for (std::size_t i = window_.size() - n; i < window_.size(); ++i) {
      num += window_[i].first;
      den += window_[i].second;
    }
    if (samples) *samples = den;
    if (den <= 0) return 0.0;
    return static_cast<double>(num) / static_cast<double>(den) / cfg_.budget;
  };

  std::int64_t fast_samples = 0;
  state_.fast_burn =
      window_burn(static_cast<std::size_t>(cfg_.fast_window), &fast_samples);
  state_.slow_burn =
      window_burn(static_cast<std::size_t>(cfg_.slow_window), nullptr);
  state_.alerting = fast_samples >= cfg_.min_samples &&
                    state_.fast_burn > cfg_.fast_burn_threshold &&
                    state_.slow_burn > cfg_.slow_burn_threshold;
  if (state_.alerting && !state_.latched) {
    state_.latched = true;
    state_.alert_tick = tick;
  }
  return state_;
}

void BurnRateTracker::reset() {
  state_ = BurnRateState{};
  last_num_ = 0;
  last_den_ = 0;
  window_.clear();
}

}  // namespace rrp::core
