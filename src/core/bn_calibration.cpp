#include "core/bn_calibration.h"

#include <algorithm>

#include "core/weight_store.h"
#include "util/checks.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp::core {

std::int64_t BnState::total_bytes() const {
  std::int64_t n = 0;
  for (const auto& [name, mv] : stats)
    n += (mv.first.numel() + mv.second.numel()) *
         static_cast<std::int64_t>(sizeof(float));
  return n;
}

BnState capture_bn_state(nn::Network& net) {
  BnState state;
  for (nn::Layer* l : net.leaf_layers())
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(l))
      state.stats.emplace(bn->name(),
                          std::make_pair(bn->running_mean(), bn->running_var()));
  return state;
}

void apply_bn_state(nn::Network& net, const BnState& state) {
  static metrics::Counter& swaps = metrics::counter("bn.state_swaps");
  swaps.add(1);
  for (const auto& [name, mv] : state.stats) {
    nn::Layer* l = net.find(name);
    RRP_CHECK_MSG(l != nullptr, "BnState names unknown layer '" << name << "'");
    auto* bn = dynamic_cast<nn::BatchNorm*>(l);
    RRP_CHECK_MSG(bn != nullptr, "'" << name << "' is not a BatchNorm");
    RRP_CHECK_MSG(mv.first.shape() == bn->running_mean().shape(),
                  "BN state width mismatch on '" << name << "'");
    bn->running_mean() = mv.first;
    bn->running_var() = mv.second;
  }
}

std::vector<BnState> calibrate_bn_per_level(
    nn::Network& net, const prune::PruneLevelLibrary& levels,
    const nn::Dataset& calib_data, const BnCalibrationConfig& config,
    Rng& rng) {
  RRP_CHECK(config.batches >= 1 && config.batch_size >= 2);
  RRP_CHECK(calib_data.size() >= static_cast<std::size_t>(config.batch_size));

  RRP_SPAN_VAR(span, "bn.calibrate");
  span.add_items(levels.level_count() - 1);  // levels recalibrated
  static metrics::Counter& calibrations = metrics::counter("bn.calibrations");
  calibrations.add(std::max(0, levels.level_count() - 1));

  const WeightStore golden = WeightStore::snapshot(net);
  const BnState level0 = capture_bn_state(net);
  const int level_count = levels.level_count();

  // Draw every level's calibration batch indices up front, in level-major /
  // batch-major order — the exact sequence the serial engine consumed — so
  // the caller's rng ends in the same state for any thread count.
  const std::size_t per_level = static_cast<std::size_t>(config.batches) *
                                static_cast<std::size_t>(config.batch_size);
  std::vector<std::vector<std::size_t>> picks(
      static_cast<std::size_t>(level_count));
  for (int k = 1; k < level_count; ++k) {
    auto& p = picks[static_cast<std::size_t>(k)];
    p.resize(per_level);
    for (auto& i : p) i = rng.uniform_u64(calib_data.size());
  }

  // Levels are independent given their batch picks: each calibrates a
  // private clone (BN running stats move batch-by-batch within a level, so
  // the batch loop stays serial per level).  Results land in per-level
  // slots, keeping the output identical to the serial engine bit-for-bit.
  std::vector<BnState> out(static_cast<std::size_t>(level_count));
  out[0] = level0;  // dense stats are already converged

  parallel_for(1, level_count, 1, [&](std::int64_t k_begin,
                                      std::int64_t k_end) {
    std::vector<int> labels;
    for (std::int64_t k = k_begin; k < k_end; ++k) {
      nn::Network local = net.clone();
      // Start from the dense statistics, then adapt under the level's mask.
      apply_bn_state(local, level0);
      golden.apply_mask(local, levels.mask(static_cast<int>(k)));
      const auto& level_picks = picks[static_cast<std::size_t>(k)];
      for (int b = 0; b < config.batches; ++b) {
        const std::vector<std::size_t> pick(
            level_picks.begin() + b * config.batch_size,
            level_picks.begin() + (b + 1) * config.batch_size);
        const nn::Tensor x = calib_data.batch(
            pick, 0, static_cast<std::size_t>(config.batch_size), &labels);
        (void)local.forward(x, /*training=*/true);  // only BN stats move
      }
      out[static_cast<std::size_t>(k)] = capture_bn_state(local);
    }
  });

  // The network is left exactly as found: clones absorbed all mutation.
  return out;
}

}  // namespace rrp::core
