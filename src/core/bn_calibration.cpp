#include "core/bn_calibration.h"

#include <algorithm>

#include "core/weight_store.h"
#include "util/checks.h"

namespace rrp::core {

std::int64_t BnState::total_bytes() const {
  std::int64_t n = 0;
  for (const auto& [name, mv] : stats)
    n += (mv.first.numel() + mv.second.numel()) *
         static_cast<std::int64_t>(sizeof(float));
  return n;
}

BnState capture_bn_state(nn::Network& net) {
  BnState state;
  for (nn::Layer* l : net.leaf_layers())
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(l))
      state.stats.emplace(bn->name(),
                          std::make_pair(bn->running_mean(), bn->running_var()));
  return state;
}

void apply_bn_state(nn::Network& net, const BnState& state) {
  for (const auto& [name, mv] : state.stats) {
    nn::Layer* l = net.find(name);
    RRP_CHECK_MSG(l != nullptr, "BnState names unknown layer '" << name << "'");
    auto* bn = dynamic_cast<nn::BatchNorm*>(l);
    RRP_CHECK_MSG(bn != nullptr, "'" << name << "' is not a BatchNorm");
    RRP_CHECK_MSG(mv.first.shape() == bn->running_mean().shape(),
                  "BN state width mismatch on '" << name << "'");
    bn->running_mean() = mv.first;
    bn->running_var() = mv.second;
  }
}

std::vector<BnState> calibrate_bn_per_level(
    nn::Network& net, const prune::PruneLevelLibrary& levels,
    const nn::Dataset& calib_data, const BnCalibrationConfig& config,
    Rng& rng) {
  RRP_CHECK(config.batches >= 1 && config.batch_size >= 2);
  RRP_CHECK(calib_data.size() >= static_cast<std::size_t>(config.batch_size));

  const WeightStore golden = WeightStore::snapshot(net);
  const BnState level0 = capture_bn_state(net);

  std::vector<BnState> out;
  out.reserve(static_cast<std::size_t>(levels.level_count()));
  std::vector<int> labels;

  for (int k = 0; k < levels.level_count(); ++k) {
    if (k == 0) {
      out.push_back(level0);  // dense stats are already converged
      continue;
    }
    // Start from the dense statistics, then adapt under the level's mask.
    apply_bn_state(net, level0);
    golden.apply_mask(net, levels.mask(k));
    for (int b = 0; b < config.batches; ++b) {
      std::vector<std::size_t> pick(static_cast<std::size_t>(config.batch_size));
      for (auto& i : pick) i = rng.uniform_u64(calib_data.size());
      const nn::Tensor x = calib_data.batch(
          pick, 0, static_cast<std::size_t>(config.batch_size), &labels);
      (void)net.forward(x, /*training=*/true);  // only BN stats move
    }
    out.push_back(capture_bn_state(net));
  }

  // Leave the network exactly as found: dense weights, dense statistics.
  golden.restore_all(net);
  apply_bn_state(net, level0);
  return out;
}

}  // namespace rrp::core
