// weight_store.h — the resident "golden" weight snapshot.
//
// The defining property of *reversible* runtime pruning is that the full
// trained weights never leave memory: pruning only zeroes (or physically
// skips) elements, and restoring copies the original values back from this
// store.  The store is immutable after snapshot; every restore is therefore
// bit-exact regardless of how many prune/restore cycles have happened.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/network.h"
#include "prune/mask.h"

namespace rrp::core {

class WeightStore {
 public:
  /// Captures all parameters of `net` (by hierarchical name) by value.
  static WeightStore snapshot(nn::Network& net);

  bool has(const std::string& param_name) const;
  const nn::Tensor& get(const std::string& param_name) const;

  /// All stored parameter names, in deterministic (lexicographic) order.
  std::vector<std::string> param_names() const;

  /// FAULT-INJECTION BACKDOOR: XORs one bit of one stored element,
  /// simulating a single-event upset in the golden copy's memory.  This is
  /// the only mutation the store permits after snapshot; it exists so the
  /// integrity scrub's store-corruption detection can be exercised
  /// (sim/faults.h, experiment R-F9) and must never be called by runtime
  /// control paths.  `bit` is in [0, 31].
  void flip_bit(const std::string& param_name, std::int64_t element, int bit);

  std::size_t param_count() const { return golden_.size(); }
  std::int64_t total_elements() const;
  /// Bytes of float storage held by the store (reversibility memory cost).
  std::int64_t total_bytes() const;

  /// Overwrites every parameter of `net` with its golden value.
  void restore_all(nn::Network& net) const;

  /// Sets every parameter element of `net` to golden (keep) or zero
  /// (pruned) according to `mask`; parameters absent from the mask are
  /// restored in full.  This is the "apply level from scratch" operation.
  void apply_mask(nn::Network& net, const prune::NetworkMask& mask) const;

 private:
  std::map<std::string, nn::Tensor> golden_;
};

}  // namespace rrp::core
