#include "core/safety_monitor.h"

#include "util/checks.h"

namespace rrp::core {

const char* criticality_name(CriticalityClass c) {
  switch (c) {
    case CriticalityClass::Low: return "Low";
    case CriticalityClass::Medium: return "Medium";
    case CriticalityClass::High: return "High";
    case CriticalityClass::Critical: return "Critical";
  }
  return "?";
}

const char* assurance_kind_name(AssuranceKind k) {
  switch (k) {
    case AssuranceKind::LevelVeto: return "level_veto";
    case AssuranceKind::LevelViolation: return "level_violation";
    case AssuranceKind::IntegrityDetect: return "integrity_detect";
    case AssuranceKind::IntegrityRepair: return "integrity_repair";
    case AssuranceKind::WatchdogDegrade: return "watchdog_degrade";
  }
  return "?";
}

SafetyMonitor::SafetyMonitor(SafetyConfig config) : config_(config) {
  // The certified ladder must be monotone: higher criticality never allows
  // MORE pruning than lower criticality.
  for (int c = 1; c < kCriticalityClasses; ++c)
    RRP_CHECK_MSG(
        config_.max_level_for[static_cast<std::size_t>(c)] <=
            config_.max_level_for[static_cast<std::size_t>(c - 1)],
        "certified max level must be non-increasing in criticality");
  for (int c = 0; c < kCriticalityClasses; ++c)
    RRP_CHECK(config_.max_level_for[static_cast<std::size_t>(c)] >= 0);
}

int SafetyMonitor::certified_max(CriticalityClass c) const {
  return config_.max_level_for[static_cast<std::size_t>(static_cast<int>(c))];
}

int SafetyMonitor::screen(std::int64_t frame, CriticalityClass c,
                          int requested_level) {
  const int cap = certified_max(c);
  const int enforced = requested_level > cap ? cap : requested_level;
  AssuranceRecord rec;
  rec.frame = frame;
  rec.criticality = c;
  rec.requested_level = requested_level;
  rec.enforced_level = enforced;
  rec.veto = enforced != requested_level;
  if (rec.veto) {
    ++veto_count_;
    // rrp-lint-allow(frame-path-alloc): intervention path only — a veto is already an off-nominal frame, and the assurance log is the certification evidence.
    log_.push_back(rec);  // only interventions are logged at screen time
  }
  return enforced;
}

bool SafetyMonitor::audit(std::int64_t frame, CriticalityClass c,
                          int executed_level) {
  ++audited_frames_;
  const int cap = certified_max(c);
  if (executed_level <= cap) return true;
  ++violation_count_;
  AssuranceRecord rec;
  rec.frame = frame;
  rec.criticality = c;
  rec.requested_level = executed_level;
  rec.enforced_level = executed_level;
  rec.kind = AssuranceKind::LevelViolation;
  rec.violation = true;
  // rrp-lint-allow(frame-path-alloc): violation path only — the audit failed, so the frame is already degrading and the record is the certification evidence.
  log_.push_back(rec);
  return false;
}

void SafetyMonitor::record_integrity_detect(std::int64_t frame,
                                            std::int64_t elements,
                                            const std::string& detail) {
  ++integrity_detects_;
  AssuranceRecord rec;
  rec.frame = frame;
  rec.kind = AssuranceKind::IntegrityDetect;
  rec.elements = elements;
  rec.detail = detail;
  log_.push_back(rec);
}

void SafetyMonitor::record_integrity_repair(std::int64_t frame,
                                            std::int64_t elements,
                                            const std::string& detail) {
  ++integrity_repairs_;
  AssuranceRecord rec;
  rec.frame = frame;
  rec.kind = AssuranceKind::IntegrityRepair;
  rec.elements = elements;
  rec.detail = detail;
  log_.push_back(rec);
}

void SafetyMonitor::record_watchdog_degrade(std::int64_t frame,
                                            CriticalityClass c, int from_level,
                                            int forced_level) {
  ++watchdog_degrades_;
  AssuranceRecord rec;
  rec.frame = frame;
  rec.kind = AssuranceKind::WatchdogDegrade;
  rec.criticality = c;
  rec.requested_level = from_level;
  rec.enforced_level = forced_level;
  rec.detail = "deadline watchdog forced certified level";
  log_.push_back(rec);
}

void SafetyMonitor::clear() {
  log_.clear();
  veto_count_ = violation_count_ = audited_frames_ = 0;
  integrity_detects_ = integrity_repairs_ = watchdog_degrades_ = 0;
}

}  // namespace rrp::core
