#include "core/metrics.h"

#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

#include "util/csv.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace rrp::core {

namespace {

std::string bound_label(double bound) {
  // fmt() trims trailing zeros ("10.0", "0.5") — deterministic and short.
  return fmt(bound, 6);
}

std::string json_escape(const std::string& s) {
  // Labeled metric names embed double quotes ({stream="3"}); escape the
  // JSON string specials so the document stays parseable.
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

MetricsSnapshot capture_metrics() {
  MetricsSnapshot snap;
  const metrics::Registry& reg = metrics::Registry::instance();
  for (const auto& [name, c] : reg.counters())
    snap.rows.push_back({name, "counter", std::to_string(c->value())});
  for (const auto& [name, g] : reg.gauges())
    snap.rows.push_back({name, "gauge", CsvWriter::num(g->value(), 9)});
  for (const auto& [name, h] : reg.histograms()) {
    const std::vector<double>& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i)
      snap.rows.push_back({name + ".le_" + bound_label(bounds[i]),
                           "histogram", std::to_string(h->bucket_count(i))});
    snap.rows.push_back({name + ".overflow", "histogram",
                         std::to_string(h->bucket_count(bounds.size()))});
    snap.rows.push_back(
        {name + ".total", "histogram", std::to_string(h->total())});
  }
  return snap;
}

void MetricsSnapshot::write_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.header({"name", "kind", "value"});
  for (const MetricRow& r : rows) w.row({r.name, r.kind, r.value});
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  // Values were formatted as plain decimal numbers; emit them unquoted so
  // the document round-trips as numeric JSON.
  out << "{\"metrics\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) out << ",";
    out << "\n{\"name\":\"" << json_escape(rows[i].name) << "\",\"kind\":\""
        << rows[i].kind << "\",\"value\":" << rows[i].value << "}";
  }
  out << "\n]}\n";
}

std::string MetricsSnapshot::csv_string() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

std::string MetricsSnapshot::json_string() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void reset_observability() {
  metrics::reset_all();
  trace::reset();
}

FrameReconciliation reconcile_frame_spans(const Telemetry& telemetry) {
  // Collect the modeled time of each "frame" span, keyed by frame tag.
  std::map<std::int64_t, double> span_us;
  for (const trace::SpanRecord& s : trace::spans())
    if (s.name == "frame" && s.frame >= 0) span_us[s.frame] += s.modeled_us;

  FrameReconciliation rec;
  for (const FrameRecord& fr : telemetry.records()) {
    const auto it = span_us.find(fr.frame);
    if (it == span_us.end()) {
      ++rec.missing_frame_spans;
      continue;
    }
    const double expect_us = fr.latency_ms * 1000.0 + fr.switch_us;
    rec.max_abs_delta_us =
        std::max(rec.max_abs_delta_us, std::fabs(expect_us - it->second));
    ++rec.frames_compared;
  }
  return rec;
}

}  // namespace rrp::core
