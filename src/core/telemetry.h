// telemetry.h — per-frame records and run-level metrics.
//
// Every closed-loop experiment produces one Telemetry object; the
// RunSummary it aggregates contains exactly the columns of table R-T2
// (missed-critical-detection rate, deadline misses, energy, accuracy).
#pragma once

#include <iosfwd>

#include "core/safety_monitor.h"

namespace rrp::core {

/// One frame of the closed loop.
struct FrameRecord {
  std::int64_t frame = 0;
  CriticalityClass criticality = CriticalityClass::Low;
  int requested_level = 0;
  int executed_level = 0;
  double latency_ms = 0.0;   ///< modeled (or measured) inference latency
  double energy_mj = 0.0;    ///< modeled inference energy
  double switch_us = 0.0;    ///< level-transition cost paid this frame
  double deadline_ms = 0.0;
  bool correct = false;      ///< perception output matched ground truth
  bool veto = false;
  bool violation = false;       ///< above the cap for the SENSED criticality
  bool true_violation = false;  ///< above the cap for the TRUE criticality
};

/// Aggregated run metrics.
struct RunSummary {
  std::int64_t frames = 0;
  double accuracy = 0.0;              ///< fraction correct, all frames
  double critical_accuracy = 0.0;     ///< accuracy on crit >= High frames
  double missed_critical_rate = 0.0;  ///< 1 - critical_accuracy
  std::int64_t critical_frames = 0;
  double deadline_miss_rate = 0.0;    ///< latency+switch > deadline
  double total_energy_mj = 0.0;
  double mean_energy_mj = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_level = 0.0;
  std::int64_t level_switches = 0;
  std::int64_t safety_violations = 0;       ///< sensed basis
  std::int64_t true_safety_violations = 0;  ///< ground-truth basis
  std::int64_t vetoes = 0;
  double mean_switch_us = 0.0;        ///< over frames with a switch
  double max_switch_us = 0.0;
};

class Telemetry {
 public:
  void add(const FrameRecord& record);
  std::size_t size() const { return records_.size(); }
  const std::vector<FrameRecord>& records() const { return records_; }

  RunSummary summarize() const;

  /// Emits one CSV row per frame (with header).
  void write_csv(std::ostream& out) const;

  void clear() { records_.clear(); }

 private:
  std::vector<FrameRecord> records_;
};

}  // namespace rrp::core
