// metrics_export.h — Prometheus-style text exposition of the metrics
// registry, plus the labeled-name parser (DESIGN.md §8).
//
// The registry keys labeled metrics as `base{k="v",…}` (keys sorted,
// values escaped — util/metrics.h MetricDomain).  This layer renders the
// whole registry in the Prometheus text format:
//
//   * metric names sanitize '.' -> '_' (Prometheus name grammar
//     [a-zA-Z_:][a-zA-Z0-9_:]*);
//   * one `# TYPE` line per family, emitted the first time the family
//     appears in sorted key order;
//   * histograms render as CUMULATIVE `_bucket{le="…"}` series plus the
//     `{le="+Inf"}` bucket and a `_count` row (no `_sum`: the registry
//     tracks counts only, by design — sums of doubles are not
//     schedule-commutative);
//   * label values reuse the registry escaping, which IS the Prometheus
//     escaping (\\ \" \n).
//
// Everything is a pure function of registry state iterated in sorted
// map order, so the exposition is byte-identical at any RRP_THREADS
// whenever the metric values are (invariant 17).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace rrp::core {

/// `base{k="v",…}` decomposed; a plain name parses to {name, {}}.
struct ParsedMetricName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Inverse of MetricDomain::labeled_name (unescapes values).  Throws
/// SerializationError on a malformed label block.
ParsedMetricName parse_labeled_name(const std::string& name);

/// Renders the current process-wide registry as Prometheus text
/// exposition (sorted, deterministic; see header comment).
std::string prometheus_exposition();

}  // namespace rrp::core
