// flight_recorder.h — the black-box flight recorder (DESIGN.md §8).
//
// A safe autonomous system must explain itself after the fact: when a
// deadline is missed or an integrity fault fires, engineers need the exact
// decision history that led there, not aggregate counters.  The
// FlightRecorder is a fixed-capacity ring buffer of per-frame
// FlightRecords — criticality, level decisions, deadline slack, assurance
// deltas, span digests — that the runner feeds every frame.  When the SLO
// monitor (core/slo.h) raises an incident, the ring's window is dumped as
// a versioned, FNV-1a-checksummed "incident bundle": a binary .rrpb file
// plus a human/diff-friendly CSV rendering.
//
// The bundle carries everything needed to re-run the recorded window —
// scenario suite + seed, noise seed, policy, deadline, scrub/watchdog
// config, certified levels, the full fault schedule, and the SLO specs —
// so `rrp_cli blackbox replay` turns every incident into a reproducible
// test case (sim/incident_replay.h).  Determinism invariant: recording is
// pure bookkeeping on the driving thread; a bundle's bytes are identical
// for any RRP_THREADS, and replay reproduces the recorded telemetry
// byte-for-byte.
//
// Layering: this is a core-layer unit.  It deliberately does NOT include
// sim/ headers (rrp_lint R3 forbids core -> sim); the fault schedule is
// mirrored into the core-level RecordedFault POD, which sim converts
// to/from its own FaultEvent.  <chrono> stays banned here too (R5): all
// time in a record is modeled platform time or frame indices.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/safety_monitor.h"
#include "core/slo.h"

namespace rrp::core {

/// One frame of black-box evidence.  A compact mirror of FrameRecord plus
/// the assurance deltas and the span digest for the frame.
struct FlightRecord {
  std::int64_t frame = 0;
  std::int32_t criticality = 0;       ///< sensed/published class (as int)
  std::int32_t true_criticality = 0;  ///< plant ground truth
  std::int32_t requested_level = 0;
  std::int32_t executed_level = 0;
  double latency_ms = 0.0;
  double switch_us = 0.0;
  double deadline_ms = 0.0;
  double energy_mj = 0.0;
  std::uint32_t flags = 0;  ///< bit 0 correct, 1 veto, 2 violation, 3 true_violation
  std::int32_t integrity_detects = 0;   ///< assurance-count delta this frame
  std::int32_t integrity_repairs = 0;
  std::int32_t watchdog_degrades = 0;
  /// FNV-1a over the spans closed during this frame (0 when tracing off).
  std::uint64_t span_digest = 0;

  static constexpr std::uint32_t kCorrect = 1u << 0;
  static constexpr std::uint32_t kVeto = 1u << 1;
  static constexpr std::uint32_t kViolation = 1u << 2;
  static constexpr std::uint32_t kTrueViolation = 1u << 3;

  bool correct() const { return (flags & kCorrect) != 0; }
  bool veto() const { return (flags & kVeto) != 0; }
  bool violation() const { return (flags & kViolation) != 0; }
  bool true_violation() const { return (flags & kTrueViolation) != 0; }
  /// Deadline slack (positive = met) in milliseconds.
  double slack_ms() const {
    return deadline_ms - (latency_ms + switch_us / 1000.0);
  }
};

/// Fixed-capacity deterministic ring buffer of FlightRecords.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  void record(const FlightRecord& r);

  /// The retained window, oldest to newest (at most capacity() records).
  std::vector<FlightRecord> window() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  std::int64_t total_recorded() const { return total_; }
  void clear();

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< overwrite position once the ring is full
  std::int64_t total_ = 0;
  std::vector<FlightRecord> ring_;
};

/// Core-level mirror of one scheduled fault (sim::FaultEvent).  Plain ints
/// so the core layer never includes sim headers; sim/incident_replay.h
/// converts both directions losslessly.
struct RecordedFault {
  std::int32_t kind = 0;
  std::int64_t frame = 0;
  std::int32_t duration_frames = 1;
  double magnitude = 4.0;
  std::uint64_t target = 0;
  std::int32_t bit = 30;
  std::int32_t stuck = 0;  ///< CriticalityClass as int
  std::int32_t count = 1;
};

/// Everything needed to reconstruct the recorded run.
struct IncidentContext {
  std::string model;     ///< provisioned model name ("lenet", ...)
  std::string suite;     ///< scenario suite ("cut_in", ...)
  std::string policy;    ///< "greedy" or "fixed<K>"
  std::string provider;  ///< informational (provider name of the run)
  std::int32_t frames = 0;
  std::uint64_t scenario_seed = 0;
  std::uint64_t noise_seed = 0;
  double deadline_ms = 0.0;
  std::int32_t hysteresis = 6;
  std::int32_t scrub_period_frames = 0;
  std::int32_t watchdog_overrun_frames = 0;
  std::int32_t sensing_delay_frames = 1;
  bool self_heal = true;
  bool trace_enabled = false;
  std::array<std::int32_t, kCriticalityClasses> certified = {4, 3, 1, 0};
  std::uint32_t recorder_capacity = 256;
  /// FNV-1a of the run's FULL telemetry CSV (not just the window): the
  /// replay oracle for frames that scrolled out of the ring.
  std::uint64_t telemetry_digest = 0;
};

/// The versioned on-disk unit: context + fault schedule + SLO specs +
/// incidents + the recorder window.
struct IncidentBundle {
  IncidentContext context;
  std::vector<RecordedFault> faults;
  std::vector<SloSpec> slos;
  std::vector<Incident> incidents;
  std::int64_t dropped_incidents = 0;
  std::vector<FlightRecord> records;
};

inline constexpr std::uint32_t kIncidentBundleMagic = 0x42505252u;  // "RRPB"
inline constexpr std::uint32_t kIncidentBundleVersion = 1u;

/// Serializes the bundle: magic, version, body, trailing FNV-1a checksum
/// of everything before it.  Little-endian, byte-exact on every platform.
void write_incident_bundle(const IncidentBundle& bundle, std::ostream& out);

/// Parses and validates a bundle; throws SerializationError on a bad
/// magic/version, a short read, or a checksum mismatch.
IncidentBundle read_incident_bundle(std::istream& in);

/// The CSV rendering of the recorder window — the byte-identity oracle
/// replay compares against.
void write_incident_csv(const IncidentBundle& bundle, std::ostream& out);
std::string incident_csv_string(const IncidentBundle& bundle);

/// Human-readable `blackbox inspect` text (context, incidents, window
/// extremes).  Stable formatting, but not a byte-identity oracle.
std::string incident_summary_string(const IncidentBundle& bundle);

/// FNV-1a digest over the trace spans recorded at index >= `from_index`
/// (name, depth, frame, sequence ticks, modeled time, items).  The runner
/// snapshots trace::spans().size() at frame start and calls this at frame
/// end to give each FlightRecord its span digest; 0 when tracing is off.
std::uint64_t span_window_digest(std::size_t from_index);

}  // namespace rrp::core
