// trained_cache.h — train-once model provisioning for tests and benches.
//
// Every experiment binary needs *trained* weights; retraining in each
// process would dominate runtime, so trained networks are cached on disk
// (serialized via nn/serialize) keyed by model name + training recipe
// version.  Datasets are regenerated deterministically from fixed seeds —
// only weights need persistence.  Caches live under cache/ (gitignored,
// auto-created on first save); delete cache/*.rrpn to force retraining.
#pragma once

#include "core/reversible_pruner.h"
#include "models/zoo.h"
#include "prune/levels.h"

namespace rrp::models {

struct TrainRecipe {
  std::size_t train_samples = 4000;
  std::size_t eval_samples = 1000;
  int epochs = 10;
  float lr = 0.05f;
  int batch_size = 32;
  std::uint64_t data_seed = 20240325;   ///< DATE'24 ASD day one
  std::uint64_t init_seed = 77;
  /// Bump to invalidate existing caches when the recipe changes.
  int version = 4;
};

struct TrainedModel {
  nn::Network net;
  nn::Dataset train_data;
  nn::Dataset eval_data;
  double eval_accuracy = 0.0;
};

/// Deterministically regenerates the task datasets of the recipe.
void make_datasets(const TrainRecipe& recipe, nn::Dataset& train,
                   nn::Dataset& eval);

/// Returns a trained model, loading from `cache_dir` when possible and
/// training + caching otherwise. Thread-compatible (not thread-safe).
TrainedModel get_trained(ModelKind kind, const TrainRecipe& recipe = {},
                         const std::string& cache_dir = "cache");

/// How the nested pruning-level ladder is built and co-trained.
struct LevelRecipe {
  std::vector<double> ratios = {0.0, 0.3, 0.5, 0.7, 0.85};
  bool structured = true;
  int co_train_epochs = 5;
  int version = 4;  ///< bump to invalidate co-trained caches
};

/// A deployment-ready model: co-trained shared weights plus the nested
/// level library (built from the dense-phase weights, so it is identical
/// on every load) and per-level eval accuracy.
struct ProvisionedModel {
  nn::Network net;                    ///< co-trained shared weights
  prune::PruneLevelLibrary levels;
  std::vector<core::BnState> bn_states;  ///< switchable BN (empty if no BN)
  nn::Dataset train_data;
  nn::Dataset eval_data;
  std::vector<double> level_accuracy; ///< eval accuracy at each level

  /// Builds a masked-mode provider with switchable BN installed.
  core::ReversiblePruner make_pruner();

  /// Builds the sparsity-realizing fast-path provider: the provisioned
  /// compacted ladder on the frame path plus the masked golden arm, with
  /// per-level BN statistics baked into each compacted clone.
  core::CompactedLadderProvider make_fast_provider(
      const nn::Shape& input_shape);
};

/// Dense-train (cached) → build nested levels → co-train (cached).
ProvisionedModel get_provisioned(ModelKind kind,
                                 const TrainRecipe& train_recipe = {},
                                 const LevelRecipe& level_recipe = {},
                                 const std::string& cache_dir = "cache");

/// Provisions several models concurrently on the process thread pool (one
/// model per pool task; each model's training pipeline is seeded
/// independently and touches only its own cache files).  Results are in
/// `kinds` order and identical to sequential get_provisioned calls for any
/// RRP_THREADS value.
std::vector<ProvisionedModel> get_provisioned_all(
    const std::vector<ModelKind>& kinds, const TrainRecipe& train_recipe = {},
    const LevelRecipe& level_recipe = {}, const std::string& cache_dir = "cache");

}  // namespace rrp::models
