// zoo.h — perception model zoo for the evaluation.
//
// Four architectures spanning the design space the evaluation sweeps:
//   mlp        — Flatten + 3 dense layers (unstructured-pruning showcase)
//   lenet      — classic conv-pool-conv-pool-dense
//   resnetlite — residual blocks (exercises topology-pinned channel widths)
//   detnet     — wider conv backbone + dense head (largest model; the
//                "detection-grade" workload of the scenario loop)
//   mobilenetlite — depthwise-separable backbone (embedded inference idiom;
//                depthwise channels are pruned via their preceding
//                pointwise producer, the standard MobileNet scheme)
//
// All models consume the sim vision task ([1, 16, 16] frames, 5 classes).
// Layers whose output width is pinned by topology (residual-adjacent convs,
// classifier heads) are marked out_prunable == false at build time.
#pragma once

#include "nn/init.h"
#include "nn/network.h"
#include "sim/vision_task.h"

namespace rrp::models {

enum class ModelKind { Mlp, LeNet, ResNetLite, DetNet, MobileNetLite };

const char* model_kind_name(ModelKind kind);
std::vector<ModelKind> all_model_kinds();

/// Builds and He-initializes the architecture (untrained).
nn::Network build_model(ModelKind kind, Rng& rng);

/// The batch-1 input shape every zoo model consumes.
nn::Shape zoo_input_shape();

/// Number of classes every zoo model predicts.
int zoo_num_classes();

}  // namespace rrp::models
