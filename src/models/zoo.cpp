#include "models/zoo.h"

#include "util/checks.h"

namespace rrp::models {

using nn::BatchNorm;
using nn::Conv2D;
using nn::DepthwiseConv2D;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::MaxPool;
using nn::Network;
using nn::ReLU;
using nn::Residual;

namespace {
constexpr int kH = 16;
constexpr int kW = 16;
constexpr int kClasses = sim::kNumClasses;

Network build_mlp() {
  Network net("mlp");
  net.emplace<Flatten>("flatten");
  net.emplace<Linear>("fc1", kH * kW, 96);
  net.emplace<ReLU>("relu1");
  net.emplace<Linear>("fc2", 96, 48);
  net.emplace<ReLU>("relu2");
  auto& head = net.emplace<Linear>("head", 48, kClasses);
  head.set_out_prunable(false);  // class count pinned
  return net;
}

Network build_lenet() {
  Network net("lenet");
  net.emplace<Conv2D>("conv1", 1, 8, 3, 1, 1);
  net.emplace<ReLU>("relu1");
  net.emplace<MaxPool>("pool1", 2, 2);
  net.emplace<Conv2D>("conv2", 8, 16, 3, 1, 1);
  net.emplace<ReLU>("relu2");
  net.emplace<MaxPool>("pool2", 2, 2);
  net.emplace<Flatten>("flatten");
  net.emplace<Linear>("fc1", 16 * 4 * 4, 48);
  net.emplace<ReLU>("relu3");
  auto& head = net.emplace<Linear>("head", 48, kClasses);
  head.set_out_prunable(false);
  return net;
}

std::unique_ptr<Residual> residual_block(const std::string& name,
                                         int channels) {
  Network body(name + ".body");
  body.emplace<Conv2D>(name + ".conv1", channels, channels, 3, 1, 1);
  body.emplace<BatchNorm>(name + ".bn1", channels);
  body.emplace<ReLU>(name + ".relu1");
  auto& conv2 =
      body.emplace<Conv2D>(name + ".conv2", channels, channels, 3, 1, 1);
  conv2.set_out_prunable(false);  // feeds the identity add
  body.emplace<BatchNorm>(name + ".bn2", channels);
  return std::make_unique<Residual>(name, std::move(body));
}

Network build_resnet_lite() {
  Network net("resnetlite");
  auto& stem = net.emplace<Conv2D>("stem", 1, 16, 3, 1, 1);
  stem.set_out_prunable(false);  // feeds the first residual add
  net.emplace<BatchNorm>("stem.bn", 16);
  net.emplace<ReLU>("stem.relu");
  net.add(residual_block("block1", 16));
  net.emplace<ReLU>("block1.out_relu");
  net.emplace<MaxPool>("pool1", 2, 2);
  net.add(residual_block("block2", 16));
  net.emplace<ReLU>("block2.out_relu");
  net.emplace<GlobalAvgPool>("gap");
  auto& head = net.emplace<Linear>("head", 16, kClasses);
  head.set_out_prunable(false);
  return net;
}

Network build_detnet() {
  Network net("detnet");
  net.emplace<Conv2D>("conv1", 1, 16, 3, 1, 1);
  net.emplace<BatchNorm>("bn1", 16);
  net.emplace<ReLU>("relu1");
  net.emplace<Conv2D>("conv2", 16, 32, 3, 1, 1);
  net.emplace<BatchNorm>("bn2", 32);
  net.emplace<ReLU>("relu2");
  net.emplace<MaxPool>("pool1", 2, 2);
  net.emplace<Conv2D>("conv3", 32, 32, 3, 1, 1);
  net.emplace<BatchNorm>("bn3", 32);
  net.emplace<ReLU>("relu3");
  net.emplace<Conv2D>("conv4", 32, 64, 3, 1, 1);
  net.emplace<BatchNorm>("bn4", 64);
  net.emplace<ReLU>("relu4");
  net.emplace<MaxPool>("pool2", 2, 2);
  net.emplace<GlobalAvgPool>("gap");
  net.emplace<Linear>("fc1", 64, 32);
  net.emplace<ReLU>("relu5");
  auto& head = net.emplace<Linear>("head", 32, kClasses);
  head.set_out_prunable(false);
  return net;
}

Network build_mobilenet_lite() {
  Network net("mobilenetlite");
  net.emplace<Conv2D>("stem", 1, 16, 3, 1, 1);
  net.emplace<BatchNorm>("stem.bn", 16);
  net.emplace<ReLU>("stem.relu");

  // Depthwise-separable block 1. The depthwise layer's channels are pinned
  // to its producer (pruning happens through stem/pw liveness).
  auto& dw1 = net.emplace<DepthwiseConv2D>("dw1", 16, 3, 1, 1);
  dw1.set_out_prunable(false);
  net.emplace<BatchNorm>("dw1.bn", 16);
  net.emplace<ReLU>("dw1.relu");
  net.emplace<Conv2D>("pw1", 16, 32, 1, 1, 0);
  net.emplace<BatchNorm>("pw1.bn", 32);
  net.emplace<ReLU>("pw1.relu");
  net.emplace<MaxPool>("pool1", 2, 2);

  // Depthwise-separable block 2.
  auto& dw2 = net.emplace<DepthwiseConv2D>("dw2", 32, 3, 1, 1);
  dw2.set_out_prunable(false);
  net.emplace<BatchNorm>("dw2.bn", 32);
  net.emplace<ReLU>("dw2.relu");
  net.emplace<Conv2D>("pw2", 32, 48, 1, 1, 0);
  net.emplace<BatchNorm>("pw2.bn", 48);
  net.emplace<ReLU>("pw2.relu");
  net.emplace<MaxPool>("pool2", 2, 2);

  net.emplace<GlobalAvgPool>("gap");
  auto& head = net.emplace<Linear>("head", 48, kClasses);
  head.set_out_prunable(false);
  return net;
}

}  // namespace

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::Mlp: return "mlp";
    case ModelKind::LeNet: return "lenet";
    case ModelKind::ResNetLite: return "resnetlite";
    case ModelKind::DetNet: return "detnet";
    case ModelKind::MobileNetLite: return "mobilenetlite";
  }
  return "?";
}

std::vector<ModelKind> all_model_kinds() {
  return {ModelKind::Mlp, ModelKind::LeNet, ModelKind::ResNetLite,
          ModelKind::DetNet, ModelKind::MobileNetLite};
}

nn::Shape zoo_input_shape() { return {1, 1, kH, kW}; }

int zoo_num_classes() { return kClasses; }

nn::Network build_model(ModelKind kind, Rng& rng) {
  Network net;
  switch (kind) {
    case ModelKind::Mlp: net = build_mlp(); break;
    case ModelKind::LeNet: net = build_lenet(); break;
    case ModelKind::ResNetLite: net = build_resnet_lite(); break;
    case ModelKind::DetNet: net = build_detnet(); break;
    case ModelKind::MobileNetLite: net = build_mobilenet_lite(); break;
  }
  nn::init_network(net, rng);
  return net;
}

}  // namespace rrp::models
