#include "models/trained_cache.h"

#include <filesystem>
#include <sstream>

#include "core/level_train.h"
#include "core/reversible_pruner.h"
#include "nn/serialize.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace rrp::models {

namespace {
std::string cache_path(ModelKind kind, const TrainRecipe& recipe,
                       const std::string& cache_dir) {
  return cache_dir + "/cache_" + model_kind_name(kind) + "_v" +
         std::to_string(recipe.version) + "_e" +
         std::to_string(recipe.epochs) + "_n" +
         std::to_string(recipe.train_samples) + ".rrpn";
}

std::string co_cache_path(ModelKind kind, const TrainRecipe& train_recipe,
                          const LevelRecipe& level_recipe,
                          const std::string& cache_dir) {
  std::ostringstream os;
  os << cache_dir << "/cache_" << model_kind_name(kind) << "_co_v"
     << level_recipe.version << "_e" << level_recipe.co_train_epochs << "_"
     << (level_recipe.structured ? "s" : "u");
  for (double r : level_recipe.ratios)
    os << "_" << static_cast<int>(r * 1000);
  os << "_base_v" << train_recipe.version << "_e" << train_recipe.epochs
     << ".rrpn";
  return os.str();
}
}  // namespace

void make_datasets(const TrainRecipe& recipe, nn::Dataset& train,
                   nn::Dataset& eval) {
  sim::VisionTaskConfig task;
  Rng train_rng(recipe.data_seed);
  Rng eval_rng(recipe.data_seed ^ 0x5EEDBEEFull);
  train = sim::make_dataset(recipe.train_samples, task, train_rng);
  eval = sim::make_dataset(recipe.eval_samples, task, eval_rng);
}

TrainedModel get_trained(ModelKind kind, const TrainRecipe& recipe,
                         const std::string& cache_dir) {
  TrainedModel out;
  make_datasets(recipe, out.train_data, out.eval_data);

  const std::string path = cache_path(kind, recipe, cache_dir);
  if (std::filesystem::exists(path)) {
    out.net = nn::load_network(path);
    out.eval_accuracy = nn::evaluate_accuracy(out.net, out.eval_data);
    RRP_LOG_INFO << "loaded trained " << model_kind_name(kind) << " from "
                 << path << " (eval acc " << out.eval_accuracy << ")";
    return out;
  }

  RRP_LOG_INFO << "training " << model_kind_name(kind) << " ("
               << recipe.epochs << " epochs, " << recipe.train_samples
               << " samples)";
  Rng init_rng(recipe.init_seed);
  out.net = build_model(kind, init_rng);

  nn::SgdConfig sgd;
  sgd.epochs = recipe.epochs;
  sgd.lr = recipe.lr;
  sgd.batch_size = recipe.batch_size;
  Rng train_rng(recipe.data_seed + 1);
  nn::train_sgd(out.net, out.train_data, sgd, train_rng);

  out.eval_accuracy = nn::evaluate_accuracy(out.net, out.eval_data);
  RRP_LOG_INFO << "trained " << model_kind_name(kind) << " eval acc "
               << out.eval_accuracy;
  std::filesystem::create_directories(cache_dir);
  nn::save_network(out.net, path);
  return out;
}

ProvisionedModel get_provisioned(ModelKind kind,
                                 const TrainRecipe& train_recipe,
                                 const LevelRecipe& level_recipe,
                                 const std::string& cache_dir) {
  TrainedModel dense = get_trained(kind, train_recipe, cache_dir);

  ProvisionedModel out;
  out.train_data = std::move(dense.train_data);
  out.eval_data = std::move(dense.eval_data);

  // The ladder is always derived from the dense-phase weights so that a
  // cache reload reproduces the exact same masks.
  const nn::Shape in_shape = zoo_input_shape();
  out.levels =
      level_recipe.structured
          ? prune::PruneLevelLibrary::build_structured(
                dense.net, level_recipe.ratios, in_shape,
                prune::ImportanceMetric::L1, /*min_channels=*/2)
          : prune::PruneLevelLibrary::build_unstructured(dense.net,
                                                         level_recipe.ratios);

  const std::string path =
      co_cache_path(kind, train_recipe, level_recipe, cache_dir);
  if (std::filesystem::exists(path)) {
    out.net = nn::load_network(path);
    RRP_LOG_INFO << "loaded co-trained " << model_kind_name(kind) << " from "
                 << path;
  } else {
    RRP_LOG_INFO << "co-training " << model_kind_name(kind) << " over "
                 << out.levels.level_count() << " levels ("
                 << level_recipe.co_train_epochs << " epochs)";
    out.net = std::move(dense.net);
    core::CoTrainConfig cfg;
    cfg.epochs = level_recipe.co_train_epochs;
    Rng rng(train_recipe.data_seed + 99);
    core::co_train_levels(out.net, out.levels, out.train_data, nn::Dataset{},
                          cfg, rng);
    std::filesystem::create_directories(cache_dir);
    nn::save_network(out.net, path);
  }

  // Switchable BN: calibrate per-level statistics (deterministic, so it is
  // cheaper to recompute on load than to widen the cache format).
  const bool has_bn = !core::capture_bn_state(out.net).empty();
  if (has_bn) {
    Rng calib_rng(train_recipe.data_seed + 7);
    out.bn_states = core::calibrate_bn_per_level(
        out.net, out.levels, out.train_data, core::BnCalibrationConfig{},
        calib_rng);
  }

  // Per-level eval accuracy on the co-trained shared weights.
  {
    core::ReversiblePruner probe(out.net, out.levels);
    if (!out.bn_states.empty()) probe.set_bn_states(out.bn_states);
    for (int k = 0; k < out.levels.level_count(); ++k) {
      probe.set_level(k);
      out.level_accuracy.push_back(
          nn::evaluate_accuracy(out.net, out.eval_data));
    }
    probe.set_level(0);
  }
  return out;
}

std::vector<ProvisionedModel> get_provisioned_all(
    const std::vector<ModelKind>& kinds, const TrainRecipe& train_recipe,
    const LevelRecipe& level_recipe, const std::string& cache_dir) {
  std::vector<ProvisionedModel> out(kinds.size());
  // Each model trains/loads into its own slot and its own cache files;
  // nested kernel parallelism inside a worker degrades gracefully to the
  // serial path via the pool's reentrancy guard.
  parallel_for(0, static_cast<std::int64_t>(kinds.size()), 1,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t i = begin; i < end; ++i)
                   out[static_cast<std::size_t>(i)] = get_provisioned(
                       kinds[static_cast<std::size_t>(i)], train_recipe,
                       level_recipe, cache_dir);
               });
  return out;
}

core::ReversiblePruner ProvisionedModel::make_pruner() {
  core::ReversiblePruner pruner(net, levels);
  if (!bn_states.empty()) pruner.set_bn_states(bn_states);
  return pruner;
}

core::CompactedLadderProvider ProvisionedModel::make_fast_provider(
    const nn::Shape& input_shape) {
  return core::CompactedLadderProvider(net, levels, input_shape, bn_states);
}

}  // namespace rrp::models
