#include <cstring>

#include "nn/gemm.h"
#include "nn/layers.h"
#include "util/checks.h"

namespace rrp::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::Linear: return "Linear";
    case LayerKind::Conv2D: return "Conv2D";
    case LayerKind::ReLU: return "ReLU";
    case LayerKind::MaxPool: return "MaxPool";
    case LayerKind::AvgPool: return "AvgPool";
    case LayerKind::GlobalAvgPool: return "GlobalAvgPool";
    case LayerKind::BatchNorm: return "BatchNorm";
    case LayerKind::Softmax: return "Softmax";
    case LayerKind::Flatten: return "Flatten";
    case LayerKind::Residual: return "Residual";
    case LayerKind::DepthwiseConv2D: return "DepthwiseConv2D";
  }
  return "?";
}

Tensor Layer::backward(const Tensor& grad_out) {
  (void)grad_out;
  throw Error("layer '" + name() + "' (" + layer_kind_name(kind()) +
              ") does not support backward");
}

Linear::Linear(std::string name, int in_features, int out_features,
               bool with_bias)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias),
      weight_({out_features, in_features}),
      bias_(with_bias ? Tensor({out_features}) : Tensor()),
      weight_grad_({out_features, in_features}),
      bias_grad_(with_bias ? Tensor({out_features}) : Tensor()) {
  RRP_CHECK(in_features > 0 && out_features > 0);
}

Tensor Linear::forward(const Tensor& x, bool training) {
  RRP_CHECK_MSG(x.dim() == 2 && x.size(1) == in_features_,
                "Linear '" << name() << "' expects [N, " << in_features_
                           << "], got " << shape_str(x.shape()));
  const int n = x.size(0);
  Tensor y({n, out_features_});
  // y[N, out] = x[N, in] * W^T (W is [out, in])
  gemm_bt(n, out_features_, in_features_, 1.0f, x.raw(), in_features_,
          weight_.raw(), in_features_, 0.0f, y.raw(), out_features_);
  if (with_bias_) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < out_features_; ++j) y.at(i, j) += bias_[j];
  }
  if (training) cached_input_ = x;
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_input_.empty(),
                "Linear '" << name() << "' backward without forward(train)");
  const Tensor& x = cached_input_;
  const int n = x.size(0);
  RRP_CHECK(grad_out.dim() == 2 && grad_out.size(0) == n &&
            grad_out.size(1) == out_features_);

  // dW[out, in] += gradY^T[out, N] * x[N, in]
  gemm_at(out_features_, in_features_, n, 1.0f, grad_out.raw(), out_features_,
          x.raw(), in_features_, 1.0f, weight_grad_.raw(), in_features_);
  if (with_bias_) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < out_features_; ++j)
        bias_grad_[j] += grad_out.at(i, j);
  }
  // dX[N, in] = gradY[N, out] * W[out, in]
  Tensor grad_in({n, in_features_});
  gemm(n, in_features_, out_features_, 1.0f, grad_out.raw(), out_features_,
       weight_.raw(), in_features_, 0.0f, grad_in.raw(), in_features_);
  return grad_in;
}

// rrp-frame-path-stop: bounded param-view collector (see Network::params).
std::vector<ParamRef> Linear::params() {
  std::vector<ParamRef> p;
  p.push_back({name() + ".weight", &weight_, &weight_grad_});
  if (with_bias_) p.push_back({name() + ".bias", &bias_, &bias_grad_});
  return p;
}

Shape Linear::output_shape(const Shape& in) const {
  RRP_CHECK(in.size() == 2 && in[1] == in_features_);
  return {in[0], out_features_};
}

std::int64_t Linear::macs(const Shape& in) const {
  (void)in;
  return static_cast<std::int64_t>(in_features_) * out_features_;
}

std::int64_t Linear::effective_macs(const Shape& in) const {
  (void)in;
  std::int64_t nnz = 0;
  for (float w : weight_.data()) nnz += (w != 0.0f);
  return nnz;
}

std::unique_ptr<Layer> Linear::clone() const {
  auto c = std::make_unique<Linear>(name(), in_features_, out_features_,
                                    with_bias_);
  c->weight_ = weight_;
  if (with_bias_) c->bias_ = bias_;
  c->out_prunable_ = out_prunable_;
  return c;
}

}  // namespace rrp::nn
