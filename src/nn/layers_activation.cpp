#include <algorithm>
#include <cmath>

#include "nn/layers.h"
#include "util/checks.h"

namespace rrp::nn {

Tensor ReLU::forward(const Tensor& x, bool training) {
  Tensor y = x;
  for (float& v : y.data()) v = std::max(v, 0.0f);
  if (training) cached_input_ = x;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_input_.empty(),
                "ReLU '" << name() << "' backward without forward(train)");
  RRP_CHECK(grad_out.shape() == cached_input_.shape());
  Tensor grad_in = grad_out;
  auto g = grad_in.data();
  auto x = cached_input_.data();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (x[i] <= 0.0f) g[i] = 0.0f;
  return grad_in;
}

std::unique_ptr<Layer> ReLU::clone() const {
  return std::make_unique<ReLU>(name());
}

Tensor Softmax::forward(const Tensor& x, bool training) {
  (void)training;
  RRP_CHECK_MSG(x.dim() >= 1, "Softmax needs rank >= 1");
  const int cols = x.size(-1);
  const std::int64_t rows = x.numel() / cols;
  Tensor y = x;
  float* d = y.raw();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = d + r * cols;
    const float m = *std::max_element(row, row + cols);
    double z = 0.0;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - m);
      z += row[c];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (int c = 0; c < cols; ++c) row[c] *= inv;
  }
  return y;
}

std::unique_ptr<Layer> Softmax::clone() const {
  return std::make_unique<Softmax>(name());
}

Tensor Flatten::forward(const Tensor& x, bool training) {
  RRP_CHECK_MSG(x.dim() >= 2, "Flatten needs rank >= 2");
  if (training) cached_in_shape_ = x.shape();
  const int n = x.size(0);
  const int rest = static_cast<int>(x.numel() / n);
  return x.reshape({n, rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_in_shape_.empty(),
                "Flatten '" << name() << "' backward without forward(train)");
  return grad_out.reshape(cached_in_shape_);
}

Shape Flatten::output_shape(const Shape& in) const {
  RRP_CHECK(in.size() >= 2);
  int rest = 1;
  for (std::size_t i = 1; i < in.size(); ++i) rest *= in[i];
  return {in[0], rest};
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>(name());
}

}  // namespace rrp::nn
