// AVX2 micro-kernels.  This translation unit is the only one compiled with
// -mavx2 (and -ffp-contract=off so mul+add never fuses into FMA); callers
// reach it through kernels::active_gemm_rows() after a runtime CPU check.
//
// Bit-exactness with the scalar reference: the j-axis is split into 8-wide
// lanes that never interact — each C element still sees its k-terms in
// ascending order, one _mm256_mul_ps then one _mm256_add_ps per term, which
// round exactly like the scalar `crow[j] += av * brow[j]`.  Scalar tail
// loops use the identical expression.
#include "nn/gemm_kernels.h"

#if defined(RRP_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace rrp::nn::kernels {

namespace {

constexpr std::int64_t kTileM = 64;
constexpr std::int64_t kTileN = 64;
constexpr std::int64_t kTileK = 64;

void scale_rows(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
                float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) std::fill(crow, crow + n, 0.0f);
    else if (beta != 1.0f)
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
  }
}

// One C row x [j, j+jn) columns, accumulated over [k0, kmax) with the row's
// 8-wide accumulators held in ymm registers.  `a_at(kk)` abstracts the A
// layout (row-major vs transposed) so both public kernels share this body.
template <typename AtFn>
inline void row_tile(std::int64_t jn, std::int64_t k0, std::int64_t kmax,
                     float alpha, AtFn a_at, const float* b, std::int64_t ldb,
                     std::int64_t j, float* crow) {
  // Up to kTileN/8 = 8 vector accumulators plus a scalar tail.
  __m256 acc[kTileN / 8];
  const std::int64_t vn = jn / 8;       // full 8-lanes
  const std::int64_t tail = jn - vn * 8;
  float* cj = crow + j;
  for (std::int64_t v = 0; v < vn; ++v) acc[v] = _mm256_loadu_ps(cj + v * 8);
  for (std::int64_t kk = k0; kk < kmax; ++kk) {
    const float av = alpha * a_at(kk);
    if (av == 0.0f) continue;  // pruned weights short-circuit
    const float* brow = b + kk * ldb + j;
    const __m256 vav = _mm256_set1_ps(av);
    for (std::int64_t v = 0; v < vn; ++v)
      acc[v] = _mm256_add_ps(acc[v],
                             _mm256_mul_ps(vav, _mm256_loadu_ps(brow + v * 8)));
    for (std::int64_t t = 0; t < tail; ++t)
      cj[vn * 8 + t] += av * brow[vn * 8 + t];
  }
  for (std::int64_t v = 0; v < vn; ++v) _mm256_storeu_ps(cj + v * 8, acc[v]);
}

}  // namespace

// rrp-frame-path: hand-vectorized AVX2 micro-kernel (runtime-dispatched).
void gemm_rows_avx2(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
                    std::int64_t k, float alpha, const float* a,
                    std::int64_t lda, const float* b, std::int64_t ldb,
                    float beta, float* c, std::int64_t ldc) {
  scale_rows(i_begin, i_end, n, beta, c, ldc);
  for (std::int64_t i0 = i_begin; i0 < i_end; i0 += kTileM) {
    const std::int64_t imax = std::min(i0 + kTileM, i_end);
    for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::int64_t kmax = std::min(k0 + kTileK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const std::int64_t jmax = std::min(j0 + kTileN, n);
        const std::int64_t jn = jmax - j0;
        for (std::int64_t i = i0; i < imax; ++i) {
          const float* arow = a + i * lda;
          row_tile(jn, k0, kmax, alpha,
                   [arow](std::int64_t kk) { return arow[kk]; }, b, ldb, j0,
                   c + i * ldc);
        }
      }
    }
  }
}

// rrp-frame-path: hand-vectorized AVX2 micro-kernel, A-transposed.
void gemm_at_rows_avx2(std::int64_t i_begin, std::int64_t i_end,
                       std::int64_t n, std::int64_t k, float alpha,
                       const float* a, std::int64_t lda, const float* b,
                       std::int64_t ldb, float beta, float* c,
                       std::int64_t ldc) {
  scale_rows(i_begin, i_end, n, beta, c, ldc);
  // A is [K, M]: A elements for row i sit at a[kk * lda + i].
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::int64_t jn = std::min(kTileN, n - j0);
      row_tile(jn, 0, k, alpha,
               [a, lda, i](std::int64_t kk) { return a[kk * lda + i]; }, b,
               ldb, j0, c + i * ldc);
    }
  }
}

}  // namespace rrp::nn::kernels

#endif  // RRP_HAVE_AVX2
