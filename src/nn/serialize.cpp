#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "util/checks.h"

namespace rrp::nn {

namespace {

constexpr char kMagic[4] = {'R', 'R', 'P', 'N'};
constexpr std::uint32_t kVersion = 1;

// ---- writer -------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  void tensor(const Tensor& t) {
    u32(static_cast<std::uint32_t>(t.dim()));
    for (int d = 0; d < t.dim(); ++d) i32(t.size(d));
    raw(t.raw(), sizeof(float) * static_cast<std::size_t>(t.numel()));
  }
  std::string take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

// ---- reader -------------------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(&bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>((*bytes_)[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    raw(&v, sizeof v);
    return v;
  }
  float f32() {
    float v;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = bytes_->substr(pos_, n);
    pos_ += n;
    return s;
  }
  Tensor tensor() {
    const std::uint32_t rank = u32();
    if (rank > 8) throw SerializationError("implausible tensor rank");
    Shape shape;
    for (std::uint32_t d = 0; d < rank; ++d) {
      const std::int32_t e = i32();
      if (e <= 0) throw SerializationError("non-positive tensor extent");
      shape.push_back(e);
    }
    const std::int64_t n = shape_numel(shape);
    std::vector<float> data(static_cast<std::size_t>(n));
    raw(data.data(), sizeof(float) * data.size());
    return Tensor(std::move(shape), std::move(data));
  }
  bool done() const { return pos_ == bytes_->size(); }

 private:
  void need(std::size_t n) {
    if (pos_ + n > bytes_->size())
      throw SerializationError("truncated network blob");
  }
  void raw(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, bytes_->data() + pos_, n);
    pos_ += n;
  }
  const std::string* bytes_;
  std::size_t pos_ = 0;
};

// ---- per-layer ----------------------------------------------------------

void write_layer(Writer& w, const Layer& layer);

void write_body(Writer& w, const Network& body) {
  w.u32(static_cast<std::uint32_t>(body.layer_count()));
  for (const auto& l : body.layers()) write_layer(w, *l);
}

void write_layer(Writer& w, const Layer& layer) {
  w.u8(static_cast<std::uint8_t>(layer.kind()));
  w.str(layer.name());
  switch (layer.kind()) {
    case LayerKind::Linear: {
      const auto& l = static_cast<const Linear&>(layer);
      w.i32(l.in_features());
      w.i32(l.out_features());
      w.u8(l.with_bias() ? 1 : 0);
      w.u8(l.out_prunable() ? 1 : 0);
      w.tensor(l.weight());
      if (l.with_bias()) w.tensor(l.bias());
      break;
    }
    case LayerKind::Conv2D: {
      const auto& c = static_cast<const Conv2D&>(layer);
      w.i32(c.in_channels());
      w.i32(c.out_channels());
      w.i32(c.kernel());
      w.i32(c.stride());
      w.i32(c.padding());
      w.u8(c.with_bias() ? 1 : 0);
      w.u8(c.out_prunable() ? 1 : 0);
      w.tensor(c.weight());
      if (c.with_bias()) w.tensor(c.bias());
      break;
    }
    case LayerKind::DepthwiseConv2D: {
      const auto& c = static_cast<const DepthwiseConv2D&>(layer);
      w.i32(c.channels());
      w.i32(c.kernel());
      w.i32(c.stride());
      w.i32(c.padding());
      w.u8(c.with_bias() ? 1 : 0);
      w.u8(c.out_prunable() ? 1 : 0);
      w.tensor(c.weight());
      if (c.with_bias()) w.tensor(c.bias());
      break;
    }
    case LayerKind::MaxPool: {
      const auto& p = static_cast<const MaxPool&>(layer);
      w.i32(p.kernel());
      w.i32(p.stride());
      break;
    }
    case LayerKind::AvgPool: {
      const auto& p = static_cast<const AvgPool&>(layer);
      w.i32(p.kernel());
      w.i32(p.stride());
      break;
    }
    case LayerKind::BatchNorm: {
      const auto& b = static_cast<const BatchNorm&>(layer);
      w.i32(b.channels());
      w.f32(b.momentum());
      w.f32(b.eps());
      w.tensor(b.gamma());
      w.tensor(b.beta());
      w.tensor(b.running_mean());
      w.tensor(b.running_var());
      break;
    }
    case LayerKind::Residual: {
      const auto& r = static_cast<const Residual&>(layer);
      write_body(w, r.body());
      break;
    }
    case LayerKind::ReLU:
    case LayerKind::Softmax:
    case LayerKind::Flatten:
    case LayerKind::GlobalAvgPool:
      break;  // no config, no params
  }
}

std::unique_ptr<Layer> read_layer(Reader& r);

Network read_body(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > 100000) throw SerializationError("implausible layer count");
  Network body;
  for (std::uint32_t i = 0; i < n; ++i) body.add(read_layer(r));
  return body;
}

std::unique_ptr<Layer> read_layer(Reader& r) {
  const auto kind = static_cast<LayerKind>(r.u8());
  const std::string name = r.str();
  switch (kind) {
    case LayerKind::Linear: {
      const int in = r.i32(), out = r.i32();
      const bool bias = r.u8() != 0;
      const bool prunable = r.u8() != 0;
      if (in <= 0 || out <= 0)
        throw SerializationError("bad Linear geometry");
      auto l = std::make_unique<Linear>(name, in, out, bias);
      l->set_out_prunable(prunable);
      Tensor wt = r.tensor();
      if (wt.shape() != Shape{out, in})
        throw SerializationError("Linear weight shape mismatch");
      l->weight() = std::move(wt);
      if (bias) {
        Tensor bt = r.tensor();
        if (bt.shape() != Shape{out})
          throw SerializationError("Linear bias shape mismatch");
        l->bias() = std::move(bt);
      }
      return l;
    }
    case LayerKind::Conv2D: {
      const int in = r.i32(), out = r.i32(), k = r.i32(), s = r.i32(),
                p = r.i32();
      const bool bias = r.u8() != 0;
      const bool prunable = r.u8() != 0;
      if (in <= 0 || out <= 0 || k <= 0 || s <= 0 || p < 0)
        throw SerializationError("bad Conv2D geometry");
      auto c = std::make_unique<Conv2D>(name, in, out, k, s, p, bias);
      c->set_out_prunable(prunable);
      Tensor wt = r.tensor();
      if (wt.shape() != Shape{out, in, k, k})
        throw SerializationError("Conv2D weight shape mismatch");
      c->weight() = std::move(wt);
      if (bias) {
        Tensor bt = r.tensor();
        if (bt.shape() != Shape{out})
          throw SerializationError("Conv2D bias shape mismatch");
        c->bias() = std::move(bt);
      }
      return c;
    }
    case LayerKind::DepthwiseConv2D: {
      const int ch = r.i32(), k = r.i32(), s = r.i32(), p = r.i32();
      const bool bias = r.u8() != 0;
      const bool prunable = r.u8() != 0;
      if (ch <= 0 || k <= 0 || s <= 0 || p < 0)
        throw SerializationError("bad DepthwiseConv2D geometry");
      auto c = std::make_unique<DepthwiseConv2D>(name, ch, k, s, p, bias);
      c->set_out_prunable(prunable);
      Tensor wt = r.tensor();
      if (wt.shape() != Shape{ch, 1, k, k})
        throw SerializationError("DepthwiseConv2D weight shape mismatch");
      c->weight() = std::move(wt);
      if (bias) {
        Tensor bt = r.tensor();
        if (bt.shape() != Shape{ch})
          throw SerializationError("DepthwiseConv2D bias shape mismatch");
        c->bias() = std::move(bt);
      }
      return c;
    }
    case LayerKind::MaxPool: {
      const int k = r.i32(), s = r.i32();
      if (k <= 0 || s <= 0) throw SerializationError("bad MaxPool geometry");
      return std::make_unique<MaxPool>(name, k, s);
    }
    case LayerKind::AvgPool: {
      const int k = r.i32(), s = r.i32();
      if (k <= 0 || s <= 0) throw SerializationError("bad AvgPool geometry");
      return std::make_unique<AvgPool>(name, k, s);
    }
    case LayerKind::BatchNorm: {
      const int ch = r.i32();
      const float momentum = r.f32(), eps = r.f32();
      if (ch <= 0) throw SerializationError("bad BatchNorm geometry");
      auto b = std::make_unique<BatchNorm>(name, ch, momentum, eps);
      Tensor gamma = r.tensor(), beta = r.tensor(), mean = r.tensor(),
             var = r.tensor();
      const Shape want{ch};
      if (gamma.shape() != want || beta.shape() != want ||
          mean.shape() != want || var.shape() != want)
        throw SerializationError("BatchNorm tensor shape mismatch");
      b->gamma() = std::move(gamma);
      b->beta() = std::move(beta);
      b->running_mean() = std::move(mean);
      b->running_var() = std::move(var);
      return b;
    }
    case LayerKind::Residual:
      return std::make_unique<Residual>(name, read_body(r));
    case LayerKind::ReLU:
      return std::make_unique<ReLU>(name);
    case LayerKind::Softmax:
      return std::make_unique<Softmax>(name);
    case LayerKind::Flatten:
      return std::make_unique<Flatten>(name);
    case LayerKind::GlobalAvgPool:
      return std::make_unique<GlobalAvgPool>(name);
  }
  throw SerializationError("unknown layer kind byte");
}

}  // namespace

std::string serialize_network(const Network& net) {
  Writer w;
  w.u8(kMagic[0]);
  w.u8(kMagic[1]);
  w.u8(kMagic[2]);
  w.u8(kMagic[3]);
  w.u32(kVersion);
  w.str(net.name());
  write_body(w, net);
  return w.take();
}

Network deserialize_network(const std::string& bytes) {
  Reader r(bytes);
  char magic[4];
  for (char& m : magic) m = static_cast<char>(r.u8());
  if (std::memcmp(magic, kMagic, 4) != 0)
    throw SerializationError("bad magic — not an RRPN blob");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw SerializationError("unsupported RRPN version " +
                             std::to_string(version));
  const std::string name = r.str();
  Network net = read_body(r);
  net.set_name(name);
  if (!r.done()) throw SerializationError("trailing bytes after network");
  return net;
}

void save_network(const Network& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw SerializationError("cannot open '" + path + "' for writing");
  const std::string bytes = serialize_network(net);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) throw SerializationError("write failed for '" + path + "'");
}

Network load_network(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw SerializationError("cannot open '" + path + "' for reading");
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return deserialize_network(bytes);
}

}  // namespace rrp::nn
