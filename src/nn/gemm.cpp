#include "nn/gemm.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp::nn {

namespace {

// Shared entry bookkeeping for the three variants: one span carrying the
// FMA count, plus the process-wide op counters.  Counter totals are
// commutative adds, so they stay byte-exact when GEMMs run inside pool
// chunks; the span is suppressed there (util/trace.h).
struct GemmScope {
  GemmScope(const char* name, std::int64_t m, std::int64_t n, std::int64_t k)
      : span(name) {
    static metrics::Counter& calls = metrics::counter("gemm.calls");
    static metrics::Counter& flops = metrics::counter("gemm.flops");
    const std::int64_t fma = m * n * k;
    calls.add(1);
    flops.add(fma);
    span.add_items(fma);
  }
  trace::Span span;
};
// Cache-blocking tile sizes; modest because models here are small.
constexpr std::int64_t kTileM = 64;
constexpr std::int64_t kTileN = 64;
constexpr std::int64_t kTileK = 64;

// Minimum FMAs per parallel chunk: below this the dispatch overhead beats
// the win.  Row-block grain is derived from it so small GEMMs stay on the
// calling thread while detnet-shaped ones fan out.
constexpr std::int64_t kMinFlopsPerChunk = 1 << 15;

std::int64_t row_grain(std::int64_t n, std::int64_t k) {
  const std::int64_t flops_per_row = std::max<std::int64_t>(1, n * k);
  return std::max<std::int64_t>(1, kMinFlopsPerChunk / flops_per_row);
}

// Rows [i_begin, i_end) of the no-transpose kernel.  Per-row accumulation
// order (k0 tiles ascending, kk ascending) is independent of the row block
// bounds, so any row partition produces bit-identical C.
void gemm_rows(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float beta, float* c,
               std::int64_t ldc) {
  // Scale C by beta first so the accumulation loop is pure FMA.
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) std::fill(crow, crow + n, 0.0f);
    else if (beta != 1.0f)
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
  }
  for (std::int64_t i0 = i_begin; i0 < i_end; i0 += kTileM) {
    const std::int64_t imax = std::min(i0 + kTileM, i_end);
    for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::int64_t kmax = std::min(k0 + kTileK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const std::int64_t jmax = std::min(j0 + kTileN, n);
        for (std::int64_t i = i0; i < imax; ++i) {
          const float* arow = a + i * lda;
          float* crow = c + i * ldc;
          for (std::int64_t kk = k0; kk < kmax; ++kk) {
            const float av = alpha * arow[kk];
            if (av == 0.0f) continue;  // pruned weights short-circuit
            const float* brow = b + kk * ldb;
            for (std::int64_t j = j0; j < jmax; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

// Rows [i_begin, i_end) of the A-transposed kernel.  The serial engine
// iterates kk outer / i inner; restricting i to a block keeps each row's
// kk-ascending accumulation order intact.
void gemm_at_rows(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) std::fill(crow, crow + n, 0.0f);
    else if (beta != 1.0f)
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
  }
  // A is [K, M]; traverse K-major so both A and B rows stream.
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * lda;
    const float* brow = b + kk * ldb;
    for (std::int64_t i = i_begin; i < i_end; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Rows [i_begin, i_end) of the B-transposed kernel; rows are fully
// independent dot-product sweeps.
void gemm_bt_rows(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;  // B is [N, K]
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = alpha * static_cast<float>(acc) +
                (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc) {
  GemmScope scope("gemm", m, n, k);
  parallel_for(0, m, row_grain(n, k),
               [&](std::int64_t i_begin, std::int64_t i_end) {
                 gemm_rows(i_begin, i_end, n, k, alpha, a, lda, b, ldb, beta,
                           c, ldc);
               });
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  GemmScope scope("gemm_at", m, n, k);
  parallel_for(0, m, row_grain(n, k),
               [&](std::int64_t i_begin, std::int64_t i_end) {
                 gemm_at_rows(i_begin, i_end, n, k, alpha, a, lda, b, ldb,
                              beta, c, ldc);
               });
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  GemmScope scope("gemm_bt", m, n, k);
  parallel_for(0, m, row_grain(n, k),
               [&](std::int64_t i_begin, std::int64_t i_end) {
                 gemm_bt_rows(i_begin, i_end, n, k, alpha, a, lda, b, ldb,
                              beta, c, ldc);
               });
}

}  // namespace rrp::nn
