#include "nn/gemm.h"

#include <algorithm>

#include "nn/gemm_kernels.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp::nn {

namespace {

// Shared entry bookkeeping for the three variants: one span carrying the
// FMA count, plus the process-wide op counters.  Counter totals are
// commutative adds, so they stay byte-exact when GEMMs run inside pool
// chunks; the span is suppressed there (util/trace.h).
struct GemmScope {
  GemmScope(const char* name, std::int64_t m, std::int64_t n, std::int64_t k)
      : span(name) {
    static metrics::Counter& calls = metrics::counter("gemm.calls");
    static metrics::Counter& flops = metrics::counter("gemm.flops");
    const std::int64_t fma = m * n * k;
    calls.add(1);
    flops.add(fma);
    span.add_items(fma);
  }
  trace::Span span;
};

// Minimum FMAs per parallel chunk: below this the dispatch overhead beats
// the win.  Row-block grain is derived from it so small GEMMs stay on the
// calling thread while detnet-shaped ones fan out.
constexpr std::int64_t kMinFlopsPerChunk = 1 << 15;

std::int64_t row_grain(std::int64_t n, std::int64_t k) {
  const std::int64_t flops_per_row = std::max<std::int64_t>(1, n * k);
  return std::max<std::int64_t>(1, kMinFlopsPerChunk / flops_per_row);
}

// Rows [i_begin, i_end) of the B-transposed kernel; rows are fully
// independent dot-product sweeps.  Stays scalar in every RRP_SIMD
// configuration: its contract accumulates each dot product in DOUBLE and
// rounds once, which a j-lane float vectorization cannot reproduce.
void gemm_bt_rows(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;  // B is [N, K]
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = alpha * static_cast<float>(acc) +
                (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

}  // namespace

// rrp-frame-path: every per-frame inference lands here.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc) {
  GemmScope scope("gemm", m, n, k);
  // Row-range micro-kernel selected once by the RRP_SIMD configuration;
  // every variant is bit-identical (nn/gemm_kernels.h), so the choice is
  // invisible to traces, goldens and bench baselines.
  const kernels::GemmRowsFn rows = kernels::active_gemm_rows();
  parallel_for(0, m, row_grain(n, k),
               [&](std::int64_t i_begin, std::int64_t i_end) {
                 // rrp-lint-allow(frame-path-unresolved): 'rows' resolves at provision time to one of the annotated gemm_rows_* variants in nn/gemm_kernels*.cpp, each certified.
                 rows(i_begin, i_end, n, k, alpha, a, lda, b, ldb, beta, c,
                      ldc);
               });
}

// rrp-frame-path: A-transposed variant of the per-frame GEMM.
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  GemmScope scope("gemm_at", m, n, k);
  const kernels::GemmRowsFn rows = kernels::active_gemm_at_rows();
  parallel_for(0, m, row_grain(n, k),
               [&](std::int64_t i_begin, std::int64_t i_end) {
                 // rrp-lint-allow(frame-path-unresolved): 'rows' resolves at provision time to one of the annotated gemm_at_rows_* variants in nn/gemm_kernels*.cpp, each certified.
                 rows(i_begin, i_end, n, k, alpha, a, lda, b, ldb, beta, c,
                      ldc);
               });
}

// rrp-frame-path: B-transposed variant of the per-frame GEMM.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  GemmScope scope("gemm_bt", m, n, k);
  parallel_for(0, m, row_grain(n, k),
               [&](std::int64_t i_begin, std::int64_t i_end) {
                 gemm_bt_rows(i_begin, i_end, n, k, alpha, a, lda, b, ldb,
                              beta, c, ldc);
               });
}

}  // namespace rrp::nn
