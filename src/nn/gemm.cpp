#include "nn/gemm.h"

#include <algorithm>

namespace rrp::nn {

namespace {
// Cache-blocking tile sizes; modest because models here are small.
constexpr std::int64_t kTileM = 64;
constexpr std::int64_t kTileN = 64;
constexpr std::int64_t kTileK = 64;
}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc) {
  // Scale C by beta first so the accumulation loop is pure FMA.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) std::fill(crow, crow + n, 0.0f);
    else if (beta != 1.0f)
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
  }
  for (std::int64_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::int64_t imax = std::min(i0 + kTileM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::int64_t kmax = std::min(k0 + kTileK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const std::int64_t jmax = std::min(j0 + kTileN, n);
        for (std::int64_t i = i0; i < imax; ++i) {
          const float* arow = a + i * lda;
          float* crow = c + i * ldc;
          for (std::int64_t kk = k0; kk < kmax; ++kk) {
            const float av = alpha * arow[kk];
            if (av == 0.0f) continue;  // pruned weights short-circuit
            const float* brow = b + kk * ldb;
            for (std::int64_t j = j0; j < jmax; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) std::fill(crow, crow + n, 0.0f);
    else if (beta != 1.0f)
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
  }
  // A is [K, M]; traverse K-major so both A and B rows stream.
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * lda;
    const float* brow = b + kk * ldb;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;  // B is [N, K]
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = alpha * static_cast<float>(acc) +
                (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

}  // namespace rrp::nn
