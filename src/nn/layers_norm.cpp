#include <cmath>

#include "nn/layers.h"
#include "util/checks.h"

namespace rrp::nn {

BatchNorm::BatchNorm(std::string name, int channels, float momentum, float eps)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      gamma_grad_({channels}),
      beta_grad_({channels}),
      running_mean_({channels}),
      running_var_({channels}) {
  RRP_CHECK(channels > 0);
  gamma_.fill(1.0f);
  running_var_.fill(1.0f);
}

namespace {
// Treats [N, C] as [N, C, 1, 1] so one code path handles both ranks.
struct NchwView {
  int n, c, hw;
};
NchwView view_of(const Tensor& x, int channels) {
  RRP_CHECK_MSG(
      (x.dim() == 4 && x.size(1) == channels) ||
          (x.dim() == 2 && x.size(1) == channels),
      "BatchNorm expects [N, " << channels << ", H, W] or [N, " << channels
                               << "], got " << shape_str(x.shape()));
  if (x.dim() == 2) return {x.size(0), channels, 1};
  return {x.size(0), channels, x.size(2) * x.size(3)};
}
}  // namespace

Tensor BatchNorm::forward(const Tensor& x, bool training) {
  const NchwView v = view_of(x, channels_);
  Tensor y = x;
  if (!training) {
    for (int s = 0; s < v.n; ++s) {
      for (int c = 0; c < v.c; ++c) {
        const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
        const float scale = gamma_[c] * inv_std;
        const float shift = beta_[c] - running_mean_[c] * scale;
        float* plane =
            y.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
        for (int i = 0; i < v.hw; ++i) plane[i] = plane[i] * scale + shift;
      }
    }
    return y;
  }

  // Training path: batch statistics per channel.
  batch_mean_.assign(static_cast<std::size_t>(v.c), 0.0f);
  batch_inv_std_.assign(static_cast<std::size_t>(v.c), 0.0f);
  const double count = static_cast<double>(v.n) * v.hw;
  RRP_CHECK_MSG(count > 1, "BatchNorm training needs more than one value");
  for (int c = 0; c < v.c; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int s = 0; s < v.n; ++s) {
      const float* plane =
          x.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      for (int i = 0; i < v.hw; ++i) {
        sum += plane[i];
        sq += static_cast<double>(plane[i]) * plane[i];
      }
    }
    const double m = sum / count;
    const double var = sq / count - m * m;
    batch_mean_[static_cast<std::size_t>(c)] = static_cast<float>(m);
    batch_inv_std_[static_cast<std::size_t>(c)] =
        static_cast<float>(1.0 / std::sqrt(var + eps_));
    running_mean_[c] =
        (1.0f - momentum_) * running_mean_[c] + momentum_ * static_cast<float>(m);
    running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                      momentum_ * static_cast<float>(var * count / (count - 1));
  }

  cached_input_ = x;
  cached_norm_ = Tensor(x.shape());
  for (int s = 0; s < v.n; ++s) {
    for (int c = 0; c < v.c; ++c) {
      const float m = batch_mean_[static_cast<std::size_t>(c)];
      const float inv = batch_inv_std_[static_cast<std::size_t>(c)];
      const float g = gamma_[c], b = beta_[c];
      const float* xin =
          x.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      float* nrm =
          cached_norm_.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      float* out = y.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      for (int i = 0; i < v.hw; ++i) {
        nrm[i] = (xin[i] - m) * inv;
        out[i] = nrm[i] * g + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_input_.empty(),
                "BatchNorm '" << name() << "' backward without forward(train)");
  const NchwView v = view_of(cached_input_, channels_);
  RRP_CHECK(grad_out.shape() == cached_input_.shape());
  Tensor grad_in(cached_input_.shape());
  const double count = static_cast<double>(v.n) * v.hw;

  for (int c = 0; c < v.c; ++c) {
    // Accumulate the two per-channel reductions the BN gradient needs.
    double sum_g = 0.0, sum_gx = 0.0;
    for (int s = 0; s < v.n; ++s) {
      const float* g =
          grad_out.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      const float* nrm =
          cached_norm_.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      for (int i = 0; i < v.hw; ++i) {
        sum_g += g[i];
        sum_gx += static_cast<double>(g[i]) * nrm[i];
      }
    }
    beta_grad_[c] += static_cast<float>(sum_g);
    gamma_grad_[c] += static_cast<float>(sum_gx);

    const float inv = batch_inv_std_[static_cast<std::size_t>(c)];
    const float gamma = gamma_[c];
    const float mean_g = static_cast<float>(sum_g / count);
    const float mean_gx = static_cast<float>(sum_gx / count);
    for (int s = 0; s < v.n; ++s) {
      const float* g =
          grad_out.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      const float* nrm =
          cached_norm_.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      float* gi =
          grad_in.raw() + (static_cast<std::int64_t>(s) * v.c + c) * v.hw;
      for (int i = 0; i < v.hw; ++i)
        gi[i] = gamma * inv * (g[i] - mean_g - nrm[i] * mean_gx);
    }
  }
  return grad_in;
}

// rrp-frame-path-stop: bounded param-view collector (see Network::params).
std::vector<ParamRef> BatchNorm::params() {
  return {{name() + ".gamma", &gamma_, &gamma_grad_},
          {name() + ".beta", &beta_, &beta_grad_}};
}

std::unique_ptr<Layer> BatchNorm::clone() const {
  auto c = std::make_unique<BatchNorm>(name(), channels_, momentum_, eps_);
  c->gamma_ = gamma_;
  c->beta_ = beta_;
  c->running_mean_ = running_mean_;
  c->running_var_ = running_var_;
  return c;
}

}  // namespace rrp::nn
