// layer.h — abstract layer interface for the rrp inference/training engine.
//
// Layers are stateful objects owning their parameters and (for training)
// gradients and forward caches.  The pruning runtime manipulates parameter
// storage directly through ParamRef, which is why parameters are plain
// Tensors rather than opaque handles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace rrp::nn {

/// Closed set of layer kinds; used by serialization and the pruning planner.
enum class LayerKind {
  Linear,
  Conv2D,
  ReLU,
  MaxPool,
  AvgPool,
  GlobalAvgPool,
  BatchNorm,
  Softmax,
  Flatten,
  Residual,
  DepthwiseConv2D,
};

/// Stable string form of a LayerKind (used in serialization and reports).
const char* layer_kind_name(LayerKind kind);

/// Non-owning reference to one named parameter tensor and its gradient.
struct ParamRef {
  std::string name;   ///< hierarchical, e.g. "block1.conv2.weight"
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Abstract base for all layers.
///
/// Contract:
///  * forward(x, /*training=*/false) must not retain references to x.
///  * forward(x, true) may cache activations; a subsequent backward(g)
///    consumes that cache, accumulates into parameter grads, and returns
///    the gradient w.r.t. the layer input.
///  * Layers that do not support training throw rrp::Error from backward.
class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  virtual LayerKind kind() const = 0;
  const std::string& name() const { return name_; }

  virtual Tensor forward(const Tensor& x, bool training = false) = 0;
  virtual Tensor backward(const Tensor& grad_out);

  /// Parameters owned directly by this layer (not recursing into children).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Child layers (only Residual has any).
  virtual std::vector<Layer*> children() { return {}; }

  /// Output shape for a given input shape (excluding failures at runtime).
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Dense multiply-accumulate count for one sample of the given shape.
  virtual std::int64_t macs(const Shape& in) const { (void)in; return 0; }

  /// MACs counting only nonzero weights (what a sparsity-aware platform
  /// executes); equals macs() when nothing is pruned.
  virtual std::int64_t effective_macs(const Shape& in) const { return macs(in); }

  /// Deep copy including parameter values (not grads/caches).
  virtual std::unique_ptr<Layer> clone() const = 0;

 private:
  std::string name_;
};

}  // namespace rrp::nn
