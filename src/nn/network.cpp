#include "nn/network.h"

#include "util/checks.h"

namespace rrp::nn {

// rrp-frame-path-stop: network construction is provision-time; reached
// only via receiver-blind 'add' name matching of metrics counters.
Layer& Network::add(std::unique_ptr<Layer> layer) {
  RRP_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Layer& Network::layer(std::size_t i) {
  RRP_CHECK(i < layers_.size());
  return *layers_[i];
}

const Layer& Network::layer(std::size_t i) const {
  RRP_CHECK(i < layers_.size());
  return *layers_[i];
}

Tensor Network::forward(const Tensor& x, bool training) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, training);
  return cur;
}

Tensor Network::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

// rrp-frame-path-stop: the param-view collector builds a vector bounded
// by layer count (a handful of references, not weights); the scrub root
// accepts this bounded setup cost on its cadence (DESIGN.md invariant 14).
std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> out;
  for (Layer* l : all_layers())
    for (auto& p : l->params()) out.push_back(p);
  return out;
}

std::vector<Layer*> Network::all_layers() {
  std::vector<Layer*> out;
  std::function<void(Layer*)> visit = [&](Layer* l) {
    out.push_back(l);
    for (Layer* c : l->children()) visit(c);
  };
  for (auto& l : layers_) visit(l.get());
  return out;
}

std::vector<Layer*> Network::leaf_layers() {
  std::vector<Layer*> out;
  for (Layer* l : all_layers())
    if (l->kind() != LayerKind::Residual) out.push_back(l);
  return out;
}

Layer* Network::find(const std::string& name) {
  for (Layer* l : all_layers())
    if (l->name() == name) return l;
  return nullptr;
}

Shape Network::output_shape(const Shape& in) const {
  Shape cur = in;
  for (const auto& l : layers_) cur = l->output_shape(cur);
  return cur;
}

std::int64_t Network::macs(const Shape& in) const {
  Shape cur = in;
  std::int64_t total = 0;
  for (const auto& l : layers_) {
    total += l->macs(cur);
    cur = l->output_shape(cur);
  }
  return total;
}

std::int64_t Network::effective_macs(const Shape& in) const {
  Shape cur = in;
  std::int64_t total = 0;
  for (const auto& l : layers_) {
    total += l->effective_macs(cur);
    cur = l->output_shape(cur);
  }
  return total;
}

std::int64_t Network::param_count() {
  std::int64_t n = 0;
  for (auto& p : params()) n += p.value->numel();
  return n;
}

std::int64_t Network::param_nonzero() {
  std::int64_t n = 0;
  for (auto& p : params())
    for (float v : p.value->data()) n += (v != 0.0f);
  return n;
}

void Network::zero_grad() {
  for (auto& p : params())
    if (p.grad != nullptr && !p.grad->empty()) p.grad->fill(0.0f);
}

Network Network::clone() const {
  Network c(name_);
  for (const auto& l : layers_) c.add(l->clone());
  return c;
}

Residual::Residual(std::string name, Network body)
    : Layer(std::move(name)), body_(std::move(body)) {
  RRP_CHECK_MSG(body_.layer_count() > 0, "Residual body must be non-empty");
}

Tensor Residual::forward(const Tensor& x, bool training) {
  Tensor y = body_.forward(x, training);
  RRP_CHECK_MSG(y.shape() == x.shape(),
                "Residual '" << name() << "' body changed shape "
                             << shape_str(x.shape()) << " -> "
                             << shape_str(y.shape()));
  y.add_(x);
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = body_.backward(grad_out);
  g.add_(grad_out);  // identity shortcut path
  return g;
}

std::vector<Layer*> Residual::children() {
  std::vector<Layer*> out;
  for (const auto& l : body_.layers()) out.push_back(l.get());
  return out;
}

Shape Residual::output_shape(const Shape& in) const {
  const Shape body_out = body_.output_shape(in);
  RRP_CHECK_MSG(body_out == in, "Residual '" << name()
                                             << "' body is not shape-preserving");
  return in;
}

std::int64_t Residual::macs(const Shape& in) const { return body_.macs(in); }

std::int64_t Residual::effective_macs(const Shape& in) const {
  return body_.effective_macs(in);
}

std::unique_ptr<Layer> Residual::clone() const {
  return std::make_unique<Residual>(name(), body_.clone());
}

}  // namespace rrp::nn
