#include "nn/layers.h"
#include "util/checks.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp::nn {

DepthwiseConv2D::DepthwiseConv2D(std::string name, int channels, int kernel,
                                 int stride, int padding, bool with_bias)
    : Layer(std::move(name)),
      channels_(channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      with_bias_(with_bias),
      weight_({channels, 1, kernel, kernel}),
      bias_(with_bias ? Tensor({channels}) : Tensor()),
      weight_grad_({channels, 1, kernel, kernel}),
      bias_grad_(with_bias ? Tensor({channels}) : Tensor()) {
  RRP_CHECK(channels > 0 && kernel > 0 && stride > 0 && padding >= 0);
}

std::pair<int, int> DepthwiseConv2D::out_hw(int h, int w) const {
  const int oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const int ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  RRP_CHECK_MSG(oh > 0 && ow > 0, "DepthwiseConv2D '" << name() << "' input "
                                                      << h << "x" << w
                                                      << " too small");
  return {oh, ow};
}

// rrp-frame-path: direct depthwise conv loop on the per-frame path.
Tensor DepthwiseConv2D::forward(const Tensor& x, bool training) {
  RRP_CHECK_MSG(x.dim() == 4 && x.size(1) == channels_,
                "DepthwiseConv2D '" << name() << "' expects [N, " << channels_
                                    << ", H, W], got "
                                    << shape_str(x.shape()));
  const int n = x.size(0), h = x.size(2), w = x.size(3);
  const auto [oh, ow] = out_hw(h, w);
  Tensor y({n, channels_, oh, ow});
  const int kk = kernel_;
  static metrics::Counter& calls = metrics::counter("depthwise.calls");
  static metrics::Counter& flops = metrics::counter("depthwise.flops");
  const std::int64_t fma = static_cast<std::int64_t>(n) * channels_ * oh * ow *
                           kk * kk;  // upper bound; padding skips some taps
  calls.add(1);
  flops.add(fma);
  RRP_SPAN_VAR(span, "depthwise.forward");
  span.add_items(fma);

  // Every (sample, channel) plane is independent: parallelize the flat
  // n*channels grid over the pool (disjoint output planes, bit-exact for
  // any thread count).
  parallel_for(
      0, static_cast<std::int64_t>(n) * channels_, 1,
      [&](std::int64_t p_begin, std::int64_t p_end) {
        for (std::int64_t p = p_begin; p < p_end; ++p) {
          const std::int64_t s = p / channels_;
          const int c = static_cast<int>(p % channels_);
          const float* plane = x.raw() + (s * channels_ + c) * h * w;
          const float* filter =
              weight_.raw() + static_cast<std::int64_t>(c) * kk * kk;
          float* out = y.raw() + (s * channels_ + c) * oh * ow;
          const float b = with_bias_ ? bias_[c] : 0.0f;
          for (int oi = 0; oi < oh; ++oi) {
            for (int oj = 0; oj < ow; ++oj) {
              double acc = b;
              for (int ki = 0; ki < kk; ++ki) {
                const int ii = oi * stride_ - padding_ + ki;
                if (ii < 0 || ii >= h) continue;
                for (int kj = 0; kj < kk; ++kj) {
                  const int jj = oj * stride_ - padding_ + kj;
                  if (jj < 0 || jj >= w) continue;
                  acc += static_cast<double>(filter[ki * kk + kj]) *
                         plane[static_cast<std::int64_t>(ii) * w + jj];
                }
              }
              out[static_cast<std::int64_t>(oi) * ow + oj] =
                  static_cast<float>(acc);
            }
          }
        }
      });
  if (training) cached_input_ = x;
  return y;
}

Tensor DepthwiseConv2D::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_input_.empty(), "DepthwiseConv2D '"
                                            << name()
                                            << "' backward without "
                                               "forward(train)");
  const Tensor& x = cached_input_;
  const int n = x.size(0), h = x.size(2), w = x.size(3);
  const auto [oh, ow] = out_hw(h, w);
  RRP_CHECK(grad_out.dim() == 4 && grad_out.size(0) == n &&
            grad_out.size(1) == channels_ && grad_out.size(2) == oh &&
            grad_out.size(3) == ow);

  Tensor grad_in(x.shape());
  const int kk = kernel_;
  // Channel c owns wgrad/bias slot c and its grad_in planes across all
  // samples, so channels parallelize with no shared writes.  The sample
  // loop stays innermost and ascending: per-channel gradient accumulation
  // order matches the serial engine exactly (the legacy s-outer / c-inner
  // nest visits each (s, c) block in the same s order per channel).
  parallel_for(0, channels_, 1, [&](std::int64_t c_begin, std::int64_t c_end) {
    for (std::int64_t c = c_begin; c < c_end; ++c) {
      const float* filter = weight_.raw() + c * kk * kk;
      float* wgrad = weight_grad_.raw() + c * kk * kk;
      for (int s = 0; s < n; ++s) {
        const float* plane =
            x.raw() + (static_cast<std::int64_t>(s) * channels_ + c) * h * w;
        const float* gout =
            grad_out.raw() +
            (static_cast<std::int64_t>(s) * channels_ + c) * oh * ow;
        float* gin = grad_in.raw() +
                     (static_cast<std::int64_t>(s) * channels_ + c) * h * w;

        double bias_acc = 0.0;
        for (int oi = 0; oi < oh; ++oi) {
          for (int oj = 0; oj < ow; ++oj) {
            const float g = gout[static_cast<std::int64_t>(oi) * ow + oj];
            if (g == 0.0f) continue;
            bias_acc += g;
            for (int ki = 0; ki < kk; ++ki) {
              const int ii = oi * stride_ - padding_ + ki;
              if (ii < 0 || ii >= h) continue;
              for (int kj = 0; kj < kk; ++kj) {
                const int jj = oj * stride_ - padding_ + kj;
                if (jj < 0 || jj >= w) continue;
                wgrad[ki * kk + kj] +=
                    g * plane[static_cast<std::int64_t>(ii) * w + jj];
                gin[static_cast<std::int64_t>(ii) * w + jj] +=
                    g * filter[ki * kk + kj];
              }
            }
          }
        }
        if (with_bias_) bias_grad_[c] += static_cast<float>(bias_acc);
      }
    }
  });
  return grad_in;
}

// rrp-frame-path-stop: bounded param-view collector (see Network::params).
std::vector<ParamRef> DepthwiseConv2D::params() {
  std::vector<ParamRef> p;
  p.push_back({name() + ".weight", &weight_, &weight_grad_});
  if (with_bias_) p.push_back({name() + ".bias", &bias_, &bias_grad_});
  return p;
}

Shape DepthwiseConv2D::output_shape(const Shape& in) const {
  RRP_CHECK(in.size() == 4 && in[1] == channels_);
  const auto [oh, ow] = out_hw(in[2], in[3]);
  return {in[0], channels_, oh, ow};
}

std::int64_t DepthwiseConv2D::macs(const Shape& in) const {
  const auto [oh, ow] = out_hw(in[2], in[3]);
  return static_cast<std::int64_t>(channels_) * kernel_ * kernel_ * oh * ow;
}

std::int64_t DepthwiseConv2D::effective_macs(const Shape& in) const {
  const auto [oh, ow] = out_hw(in[2], in[3]);
  std::int64_t nnz = 0;
  for (float v : weight_.data()) nnz += (v != 0.0f);
  return nnz * static_cast<std::int64_t>(oh) * ow;
}

std::unique_ptr<Layer> DepthwiseConv2D::clone() const {
  auto c = std::make_unique<DepthwiseConv2D>(name(), channels_, kernel_,
                                             stride_, padding_, with_bias_);
  c->weight_ = weight_;
  if (with_bias_) c->bias_ = bias_;
  c->out_prunable_ = out_prunable_;
  return c;
}

}  // namespace rrp::nn
