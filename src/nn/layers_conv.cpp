#include <cstring>

#include "nn/gemm.h"
#include "nn/layers.h"
#include "util/checks.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp::nn {

Conv2D::Conv2D(std::string name, int in_ch, int out_ch, int kernel, int stride,
               int padding, bool with_bias)
    : Layer(std::move(name)),
      in_ch_(in_ch),
      out_ch_(out_ch),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      with_bias_(with_bias),
      weight_({out_ch, in_ch, kernel, kernel}),
      bias_(with_bias ? Tensor({out_ch}) : Tensor()),
      weight_grad_({out_ch, in_ch, kernel, kernel}),
      bias_grad_(with_bias ? Tensor({out_ch}) : Tensor()) {
  RRP_CHECK(in_ch > 0 && out_ch > 0 && kernel > 0 && stride > 0 &&
            padding >= 0);
}

std::pair<int, int> Conv2D::out_hw(int h, int w) const {
  const int oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const int ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  RRP_CHECK_MSG(oh > 0 && ow > 0, "Conv2D '" << name() << "' input " << h
                                             << "x" << w << " too small");
  return {oh, ow};
}

// Unrolls one sample's input [in_ch, h, w] into col [in_ch*k*k, oh*ow].
void Conv2D::im2col(const float* src, int h, int w, float* col) const {
  const auto [oh, ow] = out_hw(h, w);
  const int k = kernel_;
  std::int64_t row = 0;
  for (int c = 0; c < in_ch_; ++c) {
    const float* plane = src + static_cast<std::int64_t>(c) * h * w;
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj, ++row) {
        float* out = col + row * static_cast<std::int64_t>(oh) * ow;
        for (int oi = 0; oi < oh; ++oi) {
          const int ii = oi * stride_ - padding_ + ki;
          if (ii < 0 || ii >= h) {
            std::memset(out + static_cast<std::int64_t>(oi) * ow, 0,
                        sizeof(float) * static_cast<std::size_t>(ow));
            continue;
          }
          const float* srow = plane + static_cast<std::int64_t>(ii) * w;
          float* orow = out + static_cast<std::int64_t>(oi) * ow;
          for (int oj = 0; oj < ow; ++oj) {
            const int jj = oj * stride_ - padding_ + kj;
            orow[oj] = (jj >= 0 && jj < w) ? srow[jj] : 0.0f;
          }
        }
      }
    }
  }
}

// Scatters col gradients [in_ch*k*k, oh*ow] back into [in_ch, h, w].
void Conv2D::col2im(const float* col, int h, int w, float* dst) const {
  const auto [oh, ow] = out_hw(h, w);
  const int k = kernel_;
  std::int64_t row = 0;
  for (int c = 0; c < in_ch_; ++c) {
    float* plane = dst + static_cast<std::int64_t>(c) * h * w;
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj, ++row) {
        const float* in = col + row * static_cast<std::int64_t>(oh) * ow;
        for (int oi = 0; oi < oh; ++oi) {
          const int ii = oi * stride_ - padding_ + ki;
          if (ii < 0 || ii >= h) continue;
          float* drow = plane + static_cast<std::int64_t>(ii) * w;
          const float* irow = in + static_cast<std::int64_t>(oi) * ow;
          for (int oj = 0; oj < ow; ++oj) {
            const int jj = oj * stride_ - padding_ + kj;
            if (jj >= 0 && jj < w) drow[jj] += irow[oj];
          }
        }
      }
    }
  }
}

// rrp-frame-path: im2col-GEMM conv — the dominant per-frame inference cost.
// NOTE(analyzer blind spot): the per-chunk `std::vector<float> col(...)`
// scratch below is a constructor, which the call-site analyzer cannot see
// (it extracts calls, not declarations). It is pool-worker scratch sized
// once per chunk, not per frame-path growth; see DESIGN.md §7.
Tensor Conv2D::forward(const Tensor& x, bool training) {
  RRP_CHECK_MSG(x.dim() == 4 && x.size(1) == in_ch_,
                "Conv2D '" << name() << "' expects [N, " << in_ch_
                           << ", H, W], got " << shape_str(x.shape()));
  const int n = x.size(0), h = x.size(2), w = x.size(3);
  const auto [oh, ow] = out_hw(h, w);
  const std::int64_t col_rows = static_cast<std::int64_t>(in_ch_) * kernel_ *
                                kernel_;
  const std::int64_t col_cols = static_cast<std::int64_t>(oh) * ow;

  Tensor y({n, out_ch_, oh, ow});
  static metrics::Counter& calls = metrics::counter("conv.calls");
  calls.add(1);
  RRP_SPAN_VAR(span, "conv.forward");
  span.add_items(static_cast<std::int64_t>(n) * out_ch_ * col_rows *
                 col_cols);  // im2col-GEMM FMAs
  // Samples write disjoint output planes: fan the batch out over the pool
  // (each chunk owns a scratch col buffer; nested GEMMs stay serial).
  parallel_for(0, n, 1, [&](std::int64_t s_begin, std::int64_t s_end) {
    std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
    for (std::int64_t s = s_begin; s < s_end; ++s) {
      const float* src = x.raw() + s * in_ch_ * h * w;
      im2col(src, h, w, col.data());
      float* out = y.raw() + s * out_ch_ * col_cols;
      // y[out_ch, oh*ow] = W[out_ch, col_rows] * col[col_rows, oh*ow]
      gemm(out_ch_, col_cols, col_rows, 1.0f, weight_.raw(), col_rows,
           col.data(), col_cols, 0.0f, out, col_cols);
      if (with_bias_) {
        for (int c = 0; c < out_ch_; ++c) {
          float* plane = out + static_cast<std::int64_t>(c) * col_cols;
          const float b = bias_[c];
          for (std::int64_t i = 0; i < col_cols; ++i) plane[i] += b;
        }
      }
    }
  });
  if (training) cached_input_ = x;
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_input_.empty(),
                "Conv2D '" << name() << "' backward without forward(train)");
  const Tensor& x = cached_input_;
  const int n = x.size(0), h = x.size(2), w = x.size(3);
  const auto [oh, ow] = out_hw(h, w);
  RRP_CHECK(grad_out.dim() == 4 && grad_out.size(0) == n &&
            grad_out.size(1) == out_ch_ && grad_out.size(2) == oh &&
            grad_out.size(3) == ow);

  const std::int64_t col_rows = static_cast<std::int64_t>(in_ch_) * kernel_ *
                                kernel_;
  const std::int64_t col_cols = static_cast<std::int64_t>(oh) * ow;

  Tensor grad_in(x.shape());
  // Per-sample weight/bias gradients land in private slices first; the
  // cross-sample reduction below runs serially in ascending sample order,
  // so the accumulated gradients match the serial engine bit-for-bit for
  // any thread count (float addition into weight_grad_ is per-element and
  // commutative between the two orderings involved).
  const std::int64_t wsize = weight_grad_.numel();
  std::vector<float> dw(static_cast<std::size_t>(n * wsize));
  std::vector<float> dbias(
      with_bias_ ? static_cast<std::size_t>(n) * out_ch_ : 0);

  parallel_for(0, n, 1, [&](std::int64_t s_begin, std::int64_t s_end) {
    std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
    std::vector<float> col_grad(static_cast<std::size_t>(col_rows * col_cols));
    for (std::int64_t s = s_begin; s < s_end; ++s) {
      const float* src = x.raw() + s * in_ch_ * h * w;
      const float* gout = grad_out.raw() + s * out_ch_ * col_cols;

      // dW_s[out_ch, col_rows] = gout[out_ch, col_cols] * col^T
      im2col(src, h, w, col.data());
      gemm_bt(out_ch_, col_rows, col_cols, 1.0f, gout, col_cols, col.data(),
              col_cols, 0.0f, dw.data() + s * wsize, col_rows);

      if (with_bias_) {
        for (int c = 0; c < out_ch_; ++c) {
          const float* plane = gout + static_cast<std::int64_t>(c) * col_cols;
          double acc = 0.0;
          for (std::int64_t i = 0; i < col_cols; ++i) acc += plane[i];
          dbias[static_cast<std::size_t>(s * out_ch_ + c)] =
              static_cast<float>(acc);
        }
      }

      // dcol[col_rows, col_cols] = W^T[col_rows, out_ch] * gout
      gemm_at(col_rows, col_cols, out_ch_, 1.0f, weight_.raw(), col_rows,
              gout, col_cols, 0.0f, col_grad.data(), col_cols);
      float* gin = grad_in.raw() + s * in_ch_ * h * w;
      col2im(col_grad.data(), h, w, gin);
    }
  });

  for (std::int64_t s = 0; s < n; ++s) {
    const float* dws = dw.data() + s * wsize;
    float* wg = weight_grad_.raw();
    for (std::int64_t i = 0; i < wsize; ++i) wg[i] += dws[i];
    if (with_bias_)
      for (int c = 0; c < out_ch_; ++c)
        bias_grad_[c] += dbias[static_cast<std::size_t>(s * out_ch_ + c)];
  }
  return grad_in;
}

// rrp-frame-path-stop: bounded param-view collector (see Network::params).
std::vector<ParamRef> Conv2D::params() {
  std::vector<ParamRef> p;
  p.push_back({name() + ".weight", &weight_, &weight_grad_});
  if (with_bias_) p.push_back({name() + ".bias", &bias_, &bias_grad_});
  return p;
}

Shape Conv2D::output_shape(const Shape& in) const {
  RRP_CHECK(in.size() == 4 && in[1] == in_ch_);
  const auto [oh, ow] = out_hw(in[2], in[3]);
  return {in[0], out_ch_, oh, ow};
}

std::int64_t Conv2D::macs(const Shape& in) const {
  const auto [oh, ow] = out_hw(in[2], in[3]);
  return static_cast<std::int64_t>(out_ch_) * in_ch_ * kernel_ * kernel_ * oh *
         ow;
}

std::int64_t Conv2D::effective_macs(const Shape& in) const {
  const auto [oh, ow] = out_hw(in[2], in[3]);
  std::int64_t nnz = 0;
  for (float v : weight_.data()) nnz += (v != 0.0f);
  return nnz * static_cast<std::int64_t>(oh) * ow;
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto c = std::make_unique<Conv2D>(name(), in_ch_, out_ch_, kernel_, stride_,
                                    padding_, with_bias_);
  c->weight_ = weight_;
  if (with_bias_) c->bias_ = bias_;
  c->out_prunable_ = out_prunable_;
  return c;
}

}  // namespace rrp::nn
