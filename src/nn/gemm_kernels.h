// gemm_kernels.h — row-range GEMM micro-kernels behind nn/gemm.cpp.
//
// Three interchangeable implementations of one row-range contract:
//
//   * reference — the original scalar tile loops (the bit-exactness
//     oracle every other variant is tested against);
//   * blocked   — register-tiled, cache-blocked portable C++ (the
//     accumulator tile lives in a local array the compiler keeps in
//     registers / baseline vector lanes);
//   * avx2      — the blocked kernel with the j-axpy hand-vectorized
//     8-wide.  Only compiled when the toolchain accepts -mavx2 and only
//     selected at runtime on hardware that reports AVX2.
//
// All variants produce BIT-IDENTICAL output: every C element accumulates
// its k-terms in ascending-k order, one rounded multiply then one rounded
// add per term (never FMA-contracted — the AVX2 translation unit is built
// without FMA codegen), and zero A-values short-circuit identically.
// Variant choice, tile shape and row partition are therefore invisible in
// the result (DESIGN.md invariant 13), which keeps golden traces and
// bench baselines independent of the RRP_SIMD build configuration.
//
// The -DRRP_SIMD CMake option picks which variant the active_* dispatch
// returns (OFF -> reference, ON -> avx2 when usable, else blocked); every
// compiled-in variant stays callable so tests can compare them directly
// within one build.
#pragma once

#include <cstdint>

namespace rrp::nn::kernels {

/// Rows [i_begin, i_end) of C = alpha*A*B + beta*C (row-major, A [M,K]).
using GemmRowsFn = void (*)(std::int64_t i_begin, std::int64_t i_end,
                            std::int64_t n, std::int64_t k, float alpha,
                            const float* a, std::int64_t lda, const float* b,
                            std::int64_t ldb, float beta, float* c,
                            std::int64_t ldc);

// --- reference (scalar oracle; always available) ---------------------------
void gemm_rows_reference(std::int64_t i_begin, std::int64_t i_end,
                         std::int64_t n, std::int64_t k, float alpha,
                         const float* a, std::int64_t lda, const float* b,
                         std::int64_t ldb, float beta, float* c,
                         std::int64_t ldc);
void gemm_at_rows_reference(std::int64_t i_begin, std::int64_t i_end,
                            std::int64_t n, std::int64_t k, float alpha,
                            const float* a, std::int64_t lda, const float* b,
                            std::int64_t ldb, float beta, float* c,
                            std::int64_t ldc);

// --- blocked (register-tiled portable; always available) -------------------
void gemm_rows_blocked(std::int64_t i_begin, std::int64_t i_end,
                       std::int64_t n, std::int64_t k, float alpha,
                       const float* a, std::int64_t lda, const float* b,
                       std::int64_t ldb, float beta, float* c,
                       std::int64_t ldc);
void gemm_at_rows_blocked(std::int64_t i_begin, std::int64_t i_end,
                          std::int64_t n, std::int64_t k, float alpha,
                          const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, float beta, float* c,
                          std::int64_t ldc);

// --- avx2 (hand-vectorized; present only when the toolchain has -mavx2) ----
#if defined(RRP_HAVE_AVX2)
void gemm_rows_avx2(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
                    std::int64_t k, float alpha, const float* a,
                    std::int64_t lda, const float* b, std::int64_t ldb,
                    float beta, float* c, std::int64_t ldc);
void gemm_at_rows_avx2(std::int64_t i_begin, std::int64_t i_end,
                       std::int64_t n, std::int64_t k, float alpha,
                       const float* a, std::int64_t lda, const float* b,
                       std::int64_t ldb, float beta, float* c,
                       std::int64_t ldc);
#endif

/// True when the AVX2 kernels are compiled in AND the CPU supports AVX2.
bool avx2_usable();

/// The kernel pair the RRP_SIMD build configuration selects (resolved once
/// per process; the choice never changes after the first call).
GemmRowsFn active_gemm_rows();
GemmRowsFn active_gemm_at_rows();

/// "scalar" (RRP_SIMD=OFF), "blocked" or "avx2" — for bench report configs
/// and diagnostics.
const char* active_variant();

}  // namespace rrp::nn::kernels
