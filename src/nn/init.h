// init.h — weight initialization schemes (deterministic via explicit Rng).
#pragma once

#include "nn/network.h"
#include "util/rng.h"

namespace rrp::nn {

/// Fills a tensor with He/Kaiming-normal values for the given fan-in.
void he_normal(Tensor& t, int fan_in, Rng& rng);

/// Fills a tensor with Xavier/Glorot-uniform values.
void xavier_uniform(Tensor& t, int fan_in, int fan_out, Rng& rng);

/// Initializes every Linear/Conv2D in the network: He-normal weights
/// (fan-in computed from the layer geometry), zero biases.  BatchNorm keeps
/// its gamma=1/beta=0 construction values.
void init_network(Network& net, Rng& rng);

}  // namespace rrp::nn
