#include <algorithm>
#include <limits>

#include "nn/layers.h"
#include "util/checks.h"

namespace rrp::nn {

namespace {
std::pair<int, int> pool_out_hw(int h, int w, int k, int s) {
  const int oh = (h - k) / s + 1;
  const int ow = (w - k) / s + 1;
  RRP_CHECK_MSG(oh > 0 && ow > 0, "pool input " << h << "x" << w
                                                << " smaller than kernel");
  return {oh, ow};
}
}  // namespace

MaxPool::MaxPool(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  RRP_CHECK(kernel > 0 && stride > 0);
}

Tensor MaxPool::forward(const Tensor& x, bool training) {
  RRP_CHECK_MSG(x.dim() == 4, "MaxPool expects NCHW");
  const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const auto [oh, ow] = pool_out_hw(h, w, kernel_, stride_);
  Tensor y({n, c, oh, ow});
  if (training) {
    cached_in_shape_ = x.shape();
    argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
  }
  std::int64_t oidx = 0;
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x.raw() + (static_cast<std::int64_t>(s) * c + ch) * h * w;
      const std::int64_t plane_base =
          (static_cast<std::int64_t>(s) * c + ch) * h * w;
      for (int oi = 0; oi < oh; ++oi) {
        for (int oj = 0; oj < ow; ++oj, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = oi * stride_ + ki;
            for (int kj = 0; kj < kernel_; ++kj) {
              const int jj = oj * stride_ + kj;
              const float v = plane[static_cast<std::int64_t>(ii) * w + jj];
              if (v > best) {
                best = v;
                best_idx = plane_base + static_cast<std::int64_t>(ii) * w + jj;
              }
            }
          }
          y[oidx] = best;
          if (training) argmax_[static_cast<std::size_t>(oidx)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_in_shape_.empty(),
                "MaxPool '" << name() << "' backward without forward(train)");
  RRP_CHECK(static_cast<std::size_t>(grad_out.numel()) == argmax_.size());
  Tensor grad_in(cached_in_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  return grad_in;
}

Shape MaxPool::output_shape(const Shape& in) const {
  RRP_CHECK(in.size() == 4);
  const auto [oh, ow] = pool_out_hw(in[2], in[3], kernel_, stride_);
  return {in[0], in[1], oh, ow};
}

std::unique_ptr<Layer> MaxPool::clone() const {
  return std::make_unique<MaxPool>(name(), kernel_, stride_);
}

AvgPool::AvgPool(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  RRP_CHECK(kernel > 0 && stride > 0);
}

Tensor AvgPool::forward(const Tensor& x, bool training) {
  RRP_CHECK_MSG(x.dim() == 4, "AvgPool expects NCHW");
  const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const auto [oh, ow] = pool_out_hw(h, w, kernel_, stride_);
  Tensor y({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  std::int64_t oidx = 0;
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x.raw() + (static_cast<std::int64_t>(s) * c + ch) * h * w;
      for (int oi = 0; oi < oh; ++oi) {
        for (int oj = 0; oj < ow; ++oj, ++oidx) {
          double acc = 0.0;
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = oi * stride_ + ki;
            for (int kj = 0; kj < kernel_; ++kj)
              acc += plane[static_cast<std::int64_t>(ii) * w + oj * stride_ +
                           kj];
          }
          y[oidx] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  if (training) cached_in_shape_ = x.shape();
  return y;
}

Tensor AvgPool::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_in_shape_.empty(),
                "AvgPool '" << name() << "' backward without forward(train)");
  const int n = cached_in_shape_[0], c = cached_in_shape_[1],
            h = cached_in_shape_[2], w = cached_in_shape_[3];
  const auto [oh, ow] = pool_out_hw(h, w, kernel_, stride_);
  RRP_CHECK(grad_out.dim() == 4 && grad_out.size(2) == oh &&
            grad_out.size(3) == ow);
  Tensor grad_in(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  std::int64_t oidx = 0;
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      float* plane =
          grad_in.raw() + (static_cast<std::int64_t>(s) * c + ch) * h * w;
      for (int oi = 0; oi < oh; ++oi) {
        for (int oj = 0; oj < ow; ++oj, ++oidx) {
          const float g = grad_out[oidx] * inv;
          for (int ki = 0; ki < kernel_; ++ki) {
            const int ii = oi * stride_ + ki;
            for (int kj = 0; kj < kernel_; ++kj)
              plane[static_cast<std::int64_t>(ii) * w + oj * stride_ + kj] +=
                  g;
          }
        }
      }
    }
  }
  return grad_in;
}

Shape AvgPool::output_shape(const Shape& in) const {
  RRP_CHECK(in.size() == 4);
  const auto [oh, ow] = pool_out_hw(in[2], in[3], kernel_, stride_);
  return {in[0], in[1], oh, ow};
}

std::unique_ptr<Layer> AvgPool::clone() const {
  return std::make_unique<AvgPool>(name(), kernel_, stride_);
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool training) {
  RRP_CHECK_MSG(x.dim() == 4, "GlobalAvgPool expects NCHW");
  const int n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          x.raw() + (static_cast<std::int64_t>(s) * c + ch) * h * w;
      double acc = 0.0;
      for (int i = 0; i < h * w; ++i) acc += plane[i];
      y.at(s, ch) = static_cast<float>(acc) * inv;
    }
  }
  if (training) cached_in_shape_ = x.shape();
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  RRP_CHECK_MSG(!cached_in_shape_.empty(),
                "GlobalAvgPool backward without forward(train)");
  const int n = cached_in_shape_[0], c = cached_in_shape_[1],
            h = cached_in_shape_[2], w = cached_in_shape_[3];
  RRP_CHECK(grad_out.dim() == 2 && grad_out.size(0) == n &&
            grad_out.size(1) == c);
  Tensor grad_in(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(s, ch) * inv;
      float* plane =
          grad_in.raw() + (static_cast<std::int64_t>(s) * c + ch) * h * w;
      for (int i = 0; i < h * w; ++i) plane[i] = g;
    }
  }
  return grad_in;
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  RRP_CHECK(in.size() == 4);
  return {in[0], in[1]};
}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>(name());
}

}  // namespace rrp::nn
