#include "nn/gemm_kernels.h"

#include <algorithm>

namespace rrp::nn::kernels {

namespace {

// Cache-blocking tile sizes; modest because models here are small.  The
// bit-exactness argument never depends on them (each C element's k-terms
// are added in ascending order no matter how the tiles cut the loops), so
// the variants are free to tile differently.
constexpr std::int64_t kTileM = 64;
constexpr std::int64_t kTileN = 64;
constexpr std::int64_t kTileK = 64;

// Register tile of the blocked kernels: kRegM C-rows x kRegN C-columns
// accumulate in a local array across one k-tile before being stored back.
// A float's round trip through the array is exact, so the store/reload at
// k-tile boundaries is invisible in the result.
constexpr std::int64_t kRegM = 4;
constexpr std::int64_t kRegN = 16;

void scale_rows(std::int64_t i_begin, std::int64_t i_end, std::int64_t n,
                float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) std::fill(crow, crow + n, 0.0f);
    else if (beta != 1.0f)
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// reference — the original scalar loops from nn/gemm.cpp, kept verbatim as
// the oracle the optimized variants are compared against bit-for-bit.
// ---------------------------------------------------------------------------

// rrp-frame-path: scalar reference micro-kernel (the bit-exactness oracle).
void gemm_rows_reference(std::int64_t i_begin, std::int64_t i_end,
                         std::int64_t n, std::int64_t k, float alpha,
                         const float* a, std::int64_t lda, const float* b,
                         std::int64_t ldb, float beta, float* c,
                         std::int64_t ldc) {
  // Scale C by beta first so the accumulation loop is pure multiply-add.
  scale_rows(i_begin, i_end, n, beta, c, ldc);
  for (std::int64_t i0 = i_begin; i0 < i_end; i0 += kTileM) {
    const std::int64_t imax = std::min(i0 + kTileM, i_end);
    for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::int64_t kmax = std::min(k0 + kTileK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const std::int64_t jmax = std::min(j0 + kTileN, n);
        for (std::int64_t i = i0; i < imax; ++i) {
          const float* arow = a + i * lda;
          float* crow = c + i * ldc;
          for (std::int64_t kk = k0; kk < kmax; ++kk) {
            const float av = alpha * arow[kk];
            if (av == 0.0f) continue;  // pruned weights short-circuit
            const float* brow = b + kk * ldb;
            for (std::int64_t j = j0; j < jmax; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

// rrp-frame-path: scalar reference micro-kernel, A-transposed.
void gemm_at_rows_reference(std::int64_t i_begin, std::int64_t i_end,
                            std::int64_t n, std::int64_t k, float alpha,
                            const float* a, std::int64_t lda, const float* b,
                            std::int64_t ldb, float beta, float* c,
                            std::int64_t ldc) {
  scale_rows(i_begin, i_end, n, beta, c, ldc);
  // A is [K, M]; traverse K-major so both A and B rows stream.
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * lda;
    const float* brow = b + kk * ldb;
    for (std::int64_t i = i_begin; i < i_end; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// ---------------------------------------------------------------------------
// blocked — register-tiled portable micro-kernels.  The accumulator tile
// acc[kRegM][kRegN] stays in registers (or baseline vector lanes) across a
// whole k-tile, so C is loaded and stored once per tile instead of once
// per k-step; the per-element arithmetic sequence is unchanged.
// ---------------------------------------------------------------------------

namespace {

void micro_tile(std::int64_t i, std::int64_t ri, std::int64_t j,
                std::int64_t jn, std::int64_t k0, std::int64_t kmax,
                float alpha, const float* a, std::int64_t lda, const float* b,
                std::int64_t ldb, float* c, std::int64_t ldc) {
  float acc[kRegM][kRegN];
  for (std::int64_t r = 0; r < ri; ++r)
    for (std::int64_t jj = 0; jj < jn; ++jj)
      acc[r][jj] = c[(i + r) * ldc + j + jj];
  for (std::int64_t kk = k0; kk < kmax; ++kk) {
    const float* brow = b + kk * ldb + j;
    for (std::int64_t r = 0; r < ri; ++r) {
      const float av = alpha * a[(i + r) * lda + kk];
      if (av == 0.0f) continue;  // pruned weights short-circuit
      for (std::int64_t jj = 0; jj < jn; ++jj) acc[r][jj] += av * brow[jj];
    }
  }
  for (std::int64_t r = 0; r < ri; ++r)
    for (std::int64_t jj = 0; jj < jn; ++jj)
      c[(i + r) * ldc + j + jj] = acc[r][jj];
}

// Same register tile for the A-transposed layout (A is [K, M]); only the
// A-element addressing differs.
void micro_tile_at(std::int64_t i, std::int64_t ri, std::int64_t j,
                   std::int64_t jn, std::int64_t k, float alpha,
                   const float* a, std::int64_t lda, const float* b,
                   std::int64_t ldb, float* c, std::int64_t ldc) {
  float acc[kRegM][kRegN];
  for (std::int64_t r = 0; r < ri; ++r)
    for (std::int64_t jj = 0; jj < jn; ++jj)
      acc[r][jj] = c[(i + r) * ldc + j + jj];
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * lda;
    const float* brow = b + kk * ldb + j;
    for (std::int64_t r = 0; r < ri; ++r) {
      const float av = alpha * arow[i + r];
      if (av == 0.0f) continue;
      for (std::int64_t jj = 0; jj < jn; ++jj) acc[r][jj] += av * brow[jj];
    }
  }
  for (std::int64_t r = 0; r < ri; ++r)
    for (std::int64_t jj = 0; jj < jn; ++jj)
      c[(i + r) * ldc + j + jj] = acc[r][jj];
}

}  // namespace

// rrp-frame-path: register-tiled cache-blocked micro-kernel.
void gemm_rows_blocked(std::int64_t i_begin, std::int64_t i_end,
                       std::int64_t n, std::int64_t k, float alpha,
                       const float* a, std::int64_t lda, const float* b,
                       std::int64_t ldb, float beta, float* c,
                       std::int64_t ldc) {
  scale_rows(i_begin, i_end, n, beta, c, ldc);
  for (std::int64_t i0 = i_begin; i0 < i_end; i0 += kTileM) {
    const std::int64_t imax = std::min(i0 + kTileM, i_end);
    for (std::int64_t k0 = 0; k0 < k; k0 += kTileK) {
      const std::int64_t kmax = std::min(k0 + kTileK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const std::int64_t jmax = std::min(j0 + kTileN, n);
        for (std::int64_t i = i0; i < imax; i += kRegM) {
          const std::int64_t ri = std::min(kRegM, imax - i);
          for (std::int64_t j = j0; j < jmax; j += kRegN) {
            const std::int64_t jn = std::min(kRegN, jmax - j);
            micro_tile(i, ri, j, jn, k0, kmax, alpha, a, lda, b, ldb, c,
                       ldc);
          }
        }
      }
    }
  }
}

// rrp-frame-path: register-tiled cache-blocked micro-kernel, A-transposed.
void gemm_at_rows_blocked(std::int64_t i_begin, std::int64_t i_end,
                          std::int64_t n, std::int64_t k, float alpha,
                          const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, float beta, float* c,
                          std::int64_t ldc) {
  scale_rows(i_begin, i_end, n, beta, c, ldc);
  // Register tile across the FULL k extent (no k-tiling: A is walked
  // column-wise here, so the win is keeping C resident, not A reuse).
  for (std::int64_t i = i_begin; i < i_end; i += kRegM) {
    const std::int64_t ri = std::min(kRegM, i_end - i);
    for (std::int64_t j = 0; j < n; j += kRegN) {
      const std::int64_t jn = std::min(kRegN, n - j);
      micro_tile_at(i, ri, j, jn, k, alpha, a, lda, b, ldb, c, ldc);
    }
  }
}

// ---------------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------------

bool avx2_usable() {
#if defined(RRP_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

GemmRowsFn active_gemm_rows() {
#if defined(RRP_SIMD)
#if defined(RRP_HAVE_AVX2)
  static const GemmRowsFn fn =
      avx2_usable() ? &gemm_rows_avx2 : &gemm_rows_blocked;
#else
  static const GemmRowsFn fn = &gemm_rows_blocked;
#endif
  return fn;
#else
  return &gemm_rows_reference;
#endif
}

GemmRowsFn active_gemm_at_rows() {
#if defined(RRP_SIMD)
#if defined(RRP_HAVE_AVX2)
  static const GemmRowsFn fn =
      avx2_usable() ? &gemm_at_rows_avx2 : &gemm_at_rows_blocked;
#else
  static const GemmRowsFn fn = &gemm_at_rows_blocked;
#endif
  return fn;
#else
  return &gemm_at_rows_reference;
#endif
}

const char* active_variant() {
#if defined(RRP_SIMD)
  return avx2_usable() ? "avx2" : "blocked";
#else
  return "scalar";
#endif
}

}  // namespace rrp::nn::kernels
