#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/checks.h"

namespace rrp::nn {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    RRP_CHECK_MSG(d > 0, "non-positive extent in shape " << shape_str(shape));
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  RRP_CHECK_MSG(
      static_cast<std::int64_t>(data_.size()) == shape_numel(shape_),
      "value count " << data_.size() << " != numel of " << shape_str(shape_));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

int Tensor::size(int d) const {
  const int rank = dim();
  if (d < 0) d += rank;
  RRP_CHECK_MSG(d >= 0 && d < rank,
                "dim " << d << " out of range for " << shape_str(shape_));
  return shape_[static_cast<std::size_t>(d)];
}

float& Tensor::operator[](std::int64_t i) {
  RRP_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i << " out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::operator[](std::int64_t i) const {
  RRP_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i << " out of range");
  return data_[static_cast<std::size_t>(i)];
}

void Tensor::check_rank(int expected) const {
  RRP_CHECK_MSG(dim() == expected, "expected rank " << expected << ", tensor is "
                                                    << shape_str(shape_));
}

std::int64_t Tensor::flat4(int i0, int i1, int i2, int i3) const {
  RRP_CHECK(i0 >= 0 && i0 < shape_[0]);
  RRP_CHECK(i1 >= 0 && i1 < shape_[1]);
  RRP_CHECK(i2 >= 0 && i2 < shape_[2]);
  RRP_CHECK(i3 >= 0 && i3 < shape_[3]);
  return ((static_cast<std::int64_t>(i0) * shape_[1] + i1) * shape_[2] + i2) *
             shape_[3] +
         i3;
}

float& Tensor::at(int i0) {
  check_rank(1);
  return (*this)[i0];
}
float& Tensor::at(int i0, int i1) {
  check_rank(2);
  RRP_CHECK(i0 >= 0 && i0 < shape_[0] && i1 >= 0 && i1 < shape_[1]);
  return data_[static_cast<std::size_t>(i0) * shape_[1] + i1];
}
float& Tensor::at(int i0, int i1, int i2) {
  check_rank(3);
  RRP_CHECK(i0 >= 0 && i0 < shape_[0] && i1 >= 0 && i1 < shape_[1] && i2 >= 0 &&
            i2 < shape_[2]);
  return data_[(static_cast<std::size_t>(i0) * shape_[1] + i1) * shape_[2] +
               i2];
}
float& Tensor::at(int i0, int i1, int i2, int i3) {
  check_rank(4);
  return data_[static_cast<std::size_t>(flat4(i0, i1, i2, i3))];
}

float Tensor::at(int i0) const { return const_cast<Tensor*>(this)->at(i0); }
float Tensor::at(int i0, int i1) const {
  return const_cast<Tensor*>(this)->at(i0, i1);
}
float Tensor::at(int i0, int i1, int i2) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2);
}
float Tensor::at(int i0, int i1, int i2, int i3) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2, i3);
}

Tensor Tensor::reshape(Shape new_shape) const {
  RRP_CHECK_MSG(shape_numel(new_shape) == numel(),
                "reshape " << shape_str(shape_) << " -> "
                           << shape_str(new_shape) << " changes numel");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::add_(const Tensor& other) {
  RRP_CHECK_MSG(shape_ == other.shape_, "add_ shape mismatch "
                                            << shape_str(shape_) << " vs "
                                            << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  RRP_CHECK_MSG(shape_ == other.shape_, "sub_ shape mismatch "
                                            << shape_str(shape_) << " vs "
                                            << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& other) {
  RRP_CHECK_MSG(shape_ == other.shape_, "axpy_ shape mismatch "
                                            << shape_str(shape_) << " vs "
                                            << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
  return *this;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::abs_sum() const {
  double s = 0.0;
  for (float v : data_) s += std::fabs(v);
  return static_cast<float>(s);
}

float Tensor::sq_sum() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  RRP_CHECK_MSG(shape_ == other.shape_, "max_abs_diff shape mismatch "
                                            << shape_str(shape_) << " vs "
                                            << shape_str(other.shape_));
  float m = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

}  // namespace rrp::nn
