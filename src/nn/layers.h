// layers.h — concrete layer types of the rrp engine.
//
// Weight layouts:
//   Linear : weight [out_features, in_features], bias [out_features]
//   Conv2D : weight [out_ch, in_ch, kh, kw],     bias [out_ch]
// Structured pruning removes *output* rows/filters; the `out_prunable`
// flag marks layers whose output channels may be structurally pruned
// (false for residual-block-final convs and the classifier head, whose
// widths are pinned by the network topology / label count).
#pragma once


#include "nn/layer.h"

namespace rrp::nn {

/// Fully-connected layer: y = x W^T + b.
class Linear : public Layer {
 public:
  Linear(std::string name, int in_features, int out_features,
         bool with_bias = true);

  LayerKind kind() const override { return LayerKind::Linear; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  Shape output_shape(const Shape& in) const override;
  std::int64_t macs(const Shape& in) const override;
  std::int64_t effective_macs(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  bool with_bias() const { return with_bias_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

  bool out_prunable() const { return out_prunable_; }
  void set_out_prunable(bool p) { out_prunable_ = p; }

 private:
  int in_features_;
  int out_features_;
  bool with_bias_;
  bool out_prunable_ = true;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

/// 2-D convolution (NCHW), implemented as im2col + GEMM.
class Conv2D : public Layer {
 public:
  Conv2D(std::string name, int in_ch, int out_ch, int kernel, int stride = 1,
         int padding = 0, bool with_bias = true);

  LayerKind kind() const override { return LayerKind::Conv2D; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  Shape output_shape(const Shape& in) const override;
  std::int64_t macs(const Shape& in) const override;
  std::int64_t effective_macs(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int in_channels() const { return in_ch_; }
  int out_channels() const { return out_ch_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }
  bool with_bias() const { return with_bias_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

  bool out_prunable() const { return out_prunable_; }
  void set_out_prunable(bool p) { out_prunable_ = p; }

  /// Spatial output extents for the given input extents.
  std::pair<int, int> out_hw(int h, int w) const;

 private:
  void im2col(const float* src, int h, int w, float* col) const;
  void col2im(const float* col, int h, int w, float* dst) const;

  int in_ch_, out_ch_, kernel_, stride_, padding_;
  bool with_bias_;
  bool out_prunable_ = true;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

/// Depthwise 2-D convolution (NCHW): channel c of the output is channel c
/// of the input convolved with its own k×k filter (multiplier 1).  Weight
/// layout [channels, 1, k, k].  Pruning couples input and output: a pruned
/// channel disappears from BOTH sides, which the mask lowering and the
/// compactor honor (out_live = in_live AND keep).
class DepthwiseConv2D : public Layer {
 public:
  DepthwiseConv2D(std::string name, int channels, int kernel, int stride = 1,
                  int padding = 0, bool with_bias = true);

  LayerKind kind() const override { return LayerKind::DepthwiseConv2D; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  Shape output_shape(const Shape& in) const override;
  std::int64_t macs(const Shape& in) const override;
  std::int64_t effective_macs(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int channels() const { return channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }
  bool with_bias() const { return with_bias_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

  bool out_prunable() const { return out_prunable_; }
  void set_out_prunable(bool p) { out_prunable_ = p; }

  std::pair<int, int> out_hw(int h, int w) const;

 private:
  int channels_, kernel_, stride_, padding_;
  bool with_bias_;
  bool out_prunable_ = true;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

/// Element-wise rectifier.
class ReLU : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::ReLU; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_input_;
};

/// Row-wise softmax over the last dimension (inference only).
class Softmax : public Layer {
 public:
  explicit Softmax(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::Softmax; }
  Tensor forward(const Tensor& x, bool training) override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::unique_ptr<Layer> clone() const override;
};

/// Collapses [N, C, H, W] (or any rank >= 2) to [N, rest].
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::Flatten; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_in_shape_;
};

/// Max pooling with square window.
class MaxPool : public Layer {
 public:
  MaxPool(std::string name, int kernel, int stride);
  LayerKind kind() const override { return LayerKind::MaxPool; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_, stride_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> argmax_;  // flat source index per output element
};

/// Average pooling with square window.
class AvgPool : public Layer {
 public:
  AvgPool(std::string name, int kernel, int stride);
  LayerKind kind() const override { return LayerKind::AvgPool; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_, stride_;
  Shape cached_in_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::GlobalAvgPool; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_in_shape_;
};

/// Per-channel batch normalization over [N, C, H, W] or [N, C].
class BatchNorm : public Layer {
 public:
  BatchNorm(std::string name, int channels, float momentum = 0.1f,
            float eps = 1e-5f);
  LayerKind kind() const override { return LayerKind::BatchNorm; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::unique_ptr<Layer> clone() const override;

  int channels() const { return channels_; }
  float momentum() const { return momentum_; }
  float eps() const { return eps_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int channels_;
  float momentum_, eps_;
  Tensor gamma_, beta_, gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;
  // training-time caches
  Tensor cached_input_, cached_norm_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

}  // namespace rrp::nn
