#include "nn/train.h"

#include <algorithm>
#include <cstring>

#include "util/checks.h"
#include "util/thread_pool.h"

namespace rrp::nn {

Tensor Dataset::batch(const std::vector<std::size_t>& indices,
                      std::size_t first, std::size_t count,
                      std::vector<int>* batch_labels) const {
  RRP_CHECK(count > 0 && first + count <= indices.size());
  const Shape& sample_shape = inputs[indices[first]].shape();
  Shape batched;
  batched.push_back(static_cast<int>(count));
  for (int d : sample_shape) batched.push_back(d);
  Tensor out(batched);
  const std::int64_t stride = inputs[indices[first]].numel();
  if (batch_labels != nullptr) batch_labels->clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = indices[first + i];
    RRP_CHECK(src < inputs.size());
    RRP_CHECK_MSG(inputs[src].shape() == sample_shape,
                  "dataset samples must share one shape");
    std::memcpy(out.raw() + static_cast<std::int64_t>(i) * stride,
                inputs[src].raw(),
                sizeof(float) * static_cast<std::size_t>(stride));
    if (batch_labels != nullptr) batch_labels->push_back(labels[src]);
  }
  return out;
}

SgdOptimizer::SgdOptimizer(Network& net, SgdConfig config)
    : net_(&net), config_(config) {
  for (auto& p : net_->params()) velocity_.emplace_back(p.value->shape());
}

void SgdOptimizer::step() {
  auto params = net_->params();
  RRP_CHECK_MSG(params.size() == velocity_.size(),
                "network structure changed under the optimizer");
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto v = velocity_[i].data();
    auto w = params[i].value->data();
    auto g = params[i].grad->data();
    RRP_CHECK(v.size() == w.size() && w.size() == g.size());
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (config_.freeze_zeros && w[j] == 0.0f) {
        v[j] = 0.0f;
        continue;
      }
      const float grad = g[j] + config_.weight_decay * w[j];
      v[j] = config_.momentum * v[j] - config_.lr * grad;
      w[j] += v[j];
    }
  }
}

std::vector<EpochStats> train_sgd(Network& net, const Dataset& data,
                                  SgdConfig config, Rng& rng) {
  RRP_CHECK_MSG(data.size() > 0, "cannot train on an empty dataset");
  RRP_CHECK(data.inputs.size() == data.labels.size());
  SgdOptimizer opt(net, config);
  std::vector<EpochStats> history;
  std::vector<int> batch_labels;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<std::size_t> order = rng.permutation(data.size());
    double loss_sum = 0.0;
    std::size_t correct = 0, seen = 0;

    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t count = std::min(
          static_cast<std::size_t>(config.batch_size), order.size() - first);
      const Tensor x = data.batch(order, first, count, &batch_labels);

      net.zero_grad();
      const Tensor logits = net.forward(x, /*training=*/true);
      const LossResult lr = softmax_cross_entropy(logits, batch_labels);
      net.backward(lr.grad);
      opt.step();

      loss_sum += static_cast<double>(lr.loss) * static_cast<double>(count);
      const auto preds = argmax_rows(logits);
      for (std::size_t i = 0; i < count; ++i)
        correct += (preds[i] == batch_labels[i]);
      seen += count;
    }

    EpochStats s;
    s.epoch = epoch;
    s.train_loss = loss_sum / static_cast<double>(seen);
    s.train_accuracy = static_cast<double>(correct) / static_cast<double>(seen);
    history.push_back(s);
    opt.set_lr(opt.lr() * config.lr_decay);
  }
  return history;
}

namespace {
// Runs `fn(net_for_chunk, batch_index)` for every evaluation batch, fanning
// batch chunks out over the thread pool.  Each worker chunk evaluates a
// private clone of `net` (layer forward() caches make a shared instance
// unsafe), and per-batch results land in index-addressed slots so callers
// can reduce them in batch order — making evaluation bit-identical to the
// serial engine for any thread count.
template <typename Fn>
void for_each_eval_batch(Network& net, const Dataset& data, int batch_size,
                         Fn&& fn) {
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::int64_t batches =
      (static_cast<std::int64_t>(order.size()) + batch_size - 1) / batch_size;

  parallel_for(0, batches, 1, [&](std::int64_t b_begin, std::int64_t b_end) {
    // Only clone when the chunk runs next to other chunks; the inline
    // single-chunk path (1 thread, or few batches) uses `net` directly,
    // exactly as the serial engine did.
    const bool whole_range = (b_begin == 0 && b_end == batches);
    Network clone;
    if (!whole_range) clone = net.clone();
    Network& local = whole_range ? net : clone;
    std::vector<int> batch_labels;
    for (std::int64_t bi = b_begin; bi < b_end; ++bi) {
      const std::size_t first =
          static_cast<std::size_t>(bi) * static_cast<std::size_t>(batch_size);
      const std::size_t count =
          std::min(static_cast<std::size_t>(batch_size), order.size() - first);
      const nn::Tensor x = data.batch(order, first, count, &batch_labels);
      fn(local, x, batch_labels, count, bi);
    }
  });
}
}  // namespace

double evaluate_accuracy(Network& net, const Dataset& data, int batch_size) {
  if (data.size() == 0) return 0.0;
  const std::int64_t batches =
      (static_cast<std::int64_t>(data.size()) + batch_size - 1) / batch_size;
  std::vector<std::size_t> per_batch_correct(
      static_cast<std::size_t>(batches), 0);
  for_each_eval_batch(
      net, data, batch_size,
      [&](Network& local, const Tensor& x, const std::vector<int>& labels,
          std::size_t count, std::int64_t bi) {
        const Tensor logits = local.forward(x, false);
        const auto preds = argmax_rows(logits);
        std::size_t correct = 0;
        for (std::size_t i = 0; i < count; ++i)
          correct += (preds[i] == labels[i]);
        per_batch_correct[static_cast<std::size_t>(bi)] = correct;
      });
  std::size_t correct = 0;
  for (std::size_t c : per_batch_correct) correct += c;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double evaluate_loss(Network& net, const Dataset& data, int batch_size) {
  if (data.size() == 0) return 0.0;
  const std::int64_t batches =
      (static_cast<std::int64_t>(data.size()) + batch_size - 1) / batch_size;
  std::vector<double> per_batch_loss(static_cast<std::size_t>(batches), 0.0);
  for_each_eval_batch(
      net, data, batch_size,
      [&](Network& local, const Tensor& x, const std::vector<int>& labels,
          std::size_t count, std::int64_t bi) {
        const LossResult lr = softmax_cross_entropy(local.forward(x, false),
                                                    labels);
        per_batch_loss[static_cast<std::size_t>(bi)] =
            static_cast<double>(lr.loss) * static_cast<double>(count);
      });
  double loss_sum = 0.0;  // reduce in batch order: bit-stable across threads
  for (double l : per_batch_loss) loss_sum += l;
  return loss_sum / static_cast<double>(data.size());
}

}  // namespace rrp::nn
