// train.h — mini-batch SGD trainer for classification models.
//
// The trainer exists so that accuracy-vs-pruning experiments run on
// *actually trained* weights rather than synthetic magnitudes; it also
// implements the masked fine-tuning used by the retraining baseline
// (gradients of masked-out weights are zeroed so sparsity is preserved).
#pragma once

#include <functional>
#include <vector>

#include "nn/loss.h"
#include "nn/network.h"
#include "util/rng.h"

namespace rrp::nn {

/// A labelled classification dataset. Samples share one shape.
struct Dataset {
  std::vector<Tensor> inputs;  ///< each sample WITHOUT batch dim, e.g. [C,H,W]
  std::vector<int> labels;
  int num_classes = 0;

  std::size_t size() const { return inputs.size(); }

  /// Stacks samples [first, first+count) into one batched tensor.
  Tensor batch(const std::vector<std::size_t>& indices, std::size_t first,
               std::size_t count, std::vector<int>* batch_labels) const;
};

/// SGD hyper-parameters.
struct SgdConfig {
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  int batch_size = 32;
  int epochs = 10;
  float lr_decay = 0.7f;  ///< multiplicative decay applied each epoch
  /// When true, parameters that are exactly zero before the step keep their
  /// zero value (used for fine-tuning a pruned network without regrowth).
  bool freeze_zeros = false;
};

/// Per-epoch training statistics.
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
};

/// SGD-with-momentum optimizer bound to one network's parameters.
class SgdOptimizer {
 public:
  SgdOptimizer(Network& net, SgdConfig config);

  /// Applies one update step from the accumulated gradients, then clears
  /// nothing (call net.zero_grad() before the next backward pass).
  void step();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  const SgdConfig& config() const { return config_; }

 private:
  Network* net_;
  SgdConfig config_;
  std::vector<Tensor> velocity_;  // parallel to net params
};

/// Trains `net` on `data` with shuffled mini-batches; returns per-epoch
/// stats. Deterministic for a fixed rng seed.
std::vector<EpochStats> train_sgd(Network& net, const Dataset& data,
                                  SgdConfig config, Rng& rng);

/// Evaluates classification accuracy over a dataset (inference mode).
double evaluate_accuracy(Network& net, const Dataset& data,
                         int batch_size = 64);

/// Evaluates mean cross-entropy loss over a dataset (inference mode).
double evaluate_loss(Network& net, const Dataset& data, int batch_size = 64);

}  // namespace rrp::nn
