// gemm.h — single-precision matrix multiply kernels.
//
// All heavy layers (Conv2D via im2col, Linear) lower to these routines,
// so the engine's latency-vs-pruning behaviour is concentrated in one place
// that the platform model can reason about (cost ∝ M·N·K).
//
// Threading: every variant parallelizes over disjoint blocks of C rows on
// the process-wide ThreadPool (util/thread_pool.h).  Each row of C is
// computed with exactly the same per-element accumulation order as the
// serial engine regardless of the thread count, so results are bit-exact
// and independent of RRP_THREADS (DESIGN.md §2, "Threading").
//
// Accumulation contract (intentional, relied on by tests/test_gemm.cpp):
//   * `gemm` and `gemm_at` accumulate C in float, adding scaled A-values
//     into the output row in k-ascending order (pure float FMA streams —
//     fastest for the row-broadcast loop structure they use).
//   * `gemm_bt` accumulates each dot product in double, then rounds once
//     to float.  Its inner loop is a [K]-contiguous dot product, where the
//     double accumulator is free and buys precision for the gradient
//     (dW += g · colᵀ) accumulations that dominate its call sites.
// Consequently the three variants agree only to float rounding tolerance
// (~1e-4 relative for the sizes used here), never bitwise; cross-variant
// consistency is covered by tolerance-bounded tests, while bit-exactness
// guarantees apply per-variant across thread counts.
#pragma once

#include <cstdint>

namespace rrp::nn {

/// C[M,N] = alpha * A[M,K] * B[K,N] + beta * C[M,N]   (row-major, no trans)
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc);

/// C[M,N] = alpha * A^T (A is [K,M]) * B[K,N] + beta * C  (row-major)
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc);

/// C[M,N] = alpha * A[M,K] * B^T (B is [N,K]) + beta * C  (row-major)
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc);

}  // namespace rrp::nn
