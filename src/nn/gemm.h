// gemm.h — single-precision matrix multiply kernels.
//
// All heavy layers (Conv2D via im2col, Linear) lower to these two routines,
// so the engine's latency-vs-pruning behaviour is concentrated in one place
// that the platform model can reason about (cost ∝ M·N·K).
#pragma once

#include <cstdint>

namespace rrp::nn {

/// C[M,N] = alpha * A[M,K] * B[K,N] + beta * C[M,N]   (row-major, no trans)
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc);

/// C[M,N] = alpha * A^T (A is [K,M]) * B[K,N] + beta * C  (row-major)
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc);

/// C[M,N] = alpha * A[M,K] * B^T (B is [N,K]) + beta * C  (row-major)
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t lda, const float* b,
             std::int64_t ldb, float beta, float* c, std::int64_t ldc);

}  // namespace rrp::nn
