// loss.h — training losses.  Each returns the scalar loss averaged over the
// batch and the gradient w.r.t. the logits/predictions.
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace rrp::nn {

struct LossResult {
  float loss = 0.0f;
  Tensor grad;  ///< d(loss)/d(input), same shape as the input
};

/// Softmax + cross-entropy over logits [N, classes] with integer labels.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Mean squared error between predictions and targets (same shape).
LossResult mse(const Tensor& pred, const Tensor& target);

/// Argmax over the last dimension of each row of [N, classes].
std::vector<int> argmax_rows(const Tensor& logits);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace rrp::nn
