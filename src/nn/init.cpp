#include "nn/init.h"

#include <cmath>

#include "util/checks.h"

namespace rrp::nn {

void he_normal(Tensor& t, int fan_in, Rng& rng) {
  RRP_CHECK(fan_in > 0);
  const double std = std::sqrt(2.0 / fan_in);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, std));
}

void xavier_uniform(Tensor& t, int fan_in, int fan_out, Rng& rng) {
  RRP_CHECK(fan_in > 0 && fan_out > 0);
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (float& v : t.data())
    v = static_cast<float>(rng.uniform(-limit, limit));
}

void init_network(Network& net, Rng& rng) {
  for (Layer* l : net.leaf_layers()) {
    if (auto* lin = dynamic_cast<Linear*>(l)) {
      he_normal(lin->weight(), lin->in_features(), rng);
      if (lin->with_bias()) lin->bias().fill(0.0f);
    } else if (auto* conv = dynamic_cast<Conv2D*>(l)) {
      const int fan_in = conv->in_channels() * conv->kernel() * conv->kernel();
      he_normal(conv->weight(), fan_in, rng);
      if (conv->with_bias()) conv->bias().fill(0.0f);
    } else if (auto* dw = dynamic_cast<DepthwiseConv2D*>(l)) {
      he_normal(dw->weight(), dw->kernel() * dw->kernel(), rng);
      if (dw->with_bias()) dw->bias().fill(0.0f);
    }
  }
}

}  // namespace rrp::nn
