#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/checks.h"

namespace rrp::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  RRP_CHECK_MSG(logits.dim() == 2, "logits must be [N, classes]");
  const int n = logits.size(0), k = logits.size(1);
  RRP_CHECK_MSG(static_cast<int>(labels.size()) == n,
                "label count " << labels.size() << " != batch " << n);

  LossResult r;
  r.grad = Tensor(logits.shape());
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    RRP_CHECK_MSG(labels[i] >= 0 && labels[i] < k,
                  "label " << labels[i] << " out of range [0, " << k << ")");
    const float* row = logits.raw() + static_cast<std::int64_t>(i) * k;
    float* grow = r.grad.raw() + static_cast<std::int64_t>(i) * k;
    const float m = *std::max_element(row, row + k);
    double z = 0.0;
    for (int c = 0; c < k; ++c) z += std::exp(static_cast<double>(row[c]) - m);
    const double log_z = std::log(z) + m;
    total += log_z - row[labels[i]];
    for (int c = 0; c < k; ++c) {
      const float p =
          static_cast<float>(std::exp(static_cast<double>(row[c]) - log_z));
      grow[c] = (p - (c == labels[i] ? 1.0f : 0.0f)) * inv_n;
    }
  }
  r.loss = static_cast<float>(total / n);
  return r;
}

LossResult mse(const Tensor& pred, const Tensor& target) {
  RRP_CHECK_MSG(pred.shape() == target.shape(), "mse shape mismatch");
  LossResult r;
  r.grad = Tensor(pred.shape());
  const std::int64_t n = pred.numel();
  RRP_CHECK(n > 0);
  double total = 0.0;
  const float scale = 2.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    total += static_cast<double>(d) * d;
    r.grad[i] = scale * d;
  }
  r.loss = static_cast<float>(total / static_cast<double>(n));
  return r;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  RRP_CHECK(logits.dim() == 2);
  const int n = logits.size(0), k = logits.size(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float* row = logits.raw() + static_cast<std::int64_t>(i) * k;
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(std::max_element(row, row + k) - row);
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const std::vector<int> pred = argmax_rows(logits);
  RRP_CHECK(pred.size() == labels.size());
  if (pred.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    correct += (pred[i] == labels[i]);
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace rrp::nn
