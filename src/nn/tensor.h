// tensor.h — dense float32 tensor, row-major, NCHW convention for 4-D.
//
// This is deliberately a small owning value type (not an expression
// template library): the inference engine gets its speed from im2col+GEMM,
// and the pruning runtime needs direct, simple access to weight storage so
// masks and restores are trivial memcpy-level operations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rrp::nn {

/// Shape is a list of extents; rank 0 (scalar) through rank 4 are used.
using Shape = std::vector<int>;

/// Returns the element count of a shape. Precondition: all extents > 0
/// (an empty shape denotes a scalar with one element).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form for error messages.
std::string shape_str(const Shape& shape);

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty tensor (rank 0, zero elements, distinct from a scalar).
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills from `values`; size must equal shape_numel(shape).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);

  const Shape& shape() const { return shape_; }
  int dim() const { return static_cast<int>(shape_.size()); }
  /// Extent of dimension d; supports negative indices (-1 == last).
  int size(int d) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Flat element access with bounds checking.
  float& operator[](std::int64_t i);
  float operator[](std::int64_t i) const;

  /// Rank-checked multi-index access.
  float& at(int i0);
  float& at(int i0, int i1);
  float& at(int i0, int i1, int i2);
  float& at(int i0, int i1, int i2, int i3);
  float at(int i0) const;
  float at(int i0, int i1) const;
  float at(int i0, int i1, int i2) const;
  float at(int i0, int i1, int i2, int i3) const;

  /// Returns a copy with a new shape of identical element count.
  Tensor reshape(Shape new_shape) const;

  void fill(float value);

  /// Element-wise in-place operations (shape-checked).
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(float scalar);
  Tensor& axpy_(float alpha, const Tensor& other);  ///< this += alpha * other

  /// Reductions.
  float sum() const;
  float abs_sum() const;    ///< L1 norm of the flattened tensor
  float sq_sum() const;     ///< squared L2 norm
  float max_abs() const;

  /// Bit-exact equality (shape and every element).
  bool equals(const Tensor& other) const;
  /// Max |a-b| over all elements; throws on shape mismatch.
  float max_abs_diff(const Tensor& other) const;

 private:
  void check_rank(int expected) const;
  std::int64_t flat4(int i0, int i1, int i2, int i3) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace rrp::nn
