// network.h — sequential network container and the Residual block.
//
// Topology model: a Network is an ordered list of layers; residual
// connections are expressed by the Residual layer, which wraps a
// sub-Network and computes x + body(x).  This covers MLPs, LeNet-style
// CNNs and ResNet-style models without a general DAG executor, while
// keeping the structure statically analyzable for the pruning planner
// (a Residual pins its body's final output width to its input width).
#pragma once

#include <functional>
#include <memory>

#include "nn/layers.h"

namespace rrp::nn {

/// Ordered container of layers with forward/backward execution.
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a layer; returns a reference to it typed as given.
  Layer& add(std::unique_ptr<Layer> layer);

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  Tensor forward(const Tensor& x, bool training = false);
  /// Back-propagates through all layers; forward(x, true) must precede.
  Tensor backward(const Tensor& grad_out);

  /// All parameters, recursing into Residual bodies, in execution order.
  std::vector<ParamRef> params();

  /// All layers in execution order, recursing into Residual bodies.
  /// Residual containers themselves are included before their children.
  std::vector<Layer*> all_layers();

  /// Leaf layers only (no Residual containers), execution order.
  std::vector<Layer*> leaf_layers();

  /// Finds a leaf or container layer by exact name; nullptr if absent.
  Layer* find(const std::string& name);

  Shape output_shape(const Shape& in) const;
  std::int64_t macs(const Shape& in) const;
  std::int64_t effective_macs(const Shape& in) const;

  /// Total parameter element count.
  std::int64_t param_count();
  /// Count of nonzero parameter elements (post-masking).
  std::int64_t param_nonzero();

  void zero_grad();

  Network clone() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Residual block: y = x + body(x). The body must preserve shape.
class Residual : public Layer {
 public:
  Residual(std::string name, Network body);

  LayerKind kind() const override { return LayerKind::Residual; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override { return {}; }  // owned by body
  std::vector<Layer*> children() override;
  Shape output_shape(const Shape& in) const override;
  std::int64_t macs(const Shape& in) const override;
  std::int64_t effective_macs(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  Network& body() { return body_; }
  const Network& body() const { return body_; }

 private:
  Network body_;
};

}  // namespace rrp::nn
