// serialize.h — binary (de)serialization of whole networks.
//
// Purpose in this project: the *non-reversible* baseline recovers full
// accuracy after pruning by re-deserializing the original model (from RAM
// or disk), exactly like a deployed system that re-loads its .onnx/.pt
// artifact.  The recovery-latency experiment (R-T1) compares that against
// the reversible restore path, so this format is a first-class citizen.
//
// Format (little-endian):
//   magic "RRPN" | u32 version | string name | u32 nlayers | layer...
//   layer := u8 kind | string name | kind-specific config | param tensors
//   tensor := u32 rank | i32 dims[rank] | f32 data[numel]
#pragma once

#include <cstdint>
#include <string>

#include "nn/network.h"

namespace rrp::nn {

/// Serializes a network (architecture + parameters + BN running stats).
std::string serialize_network(const Network& net);

/// Reconstructs a network from serialize_network() output.
/// Throws rrp::SerializationError on malformed input.
Network deserialize_network(const std::string& bytes);

/// Convenience file round-trip.
void save_network(const Network& net, const std::string& path);
Network load_network(const std::string& path);

}  // namespace rrp::nn
