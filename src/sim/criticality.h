// criticality.h — time-to-collision based criticality signal.
//
// The runtime controller's "Monitor" input: the minimum time-to-collision
// (TTC) over in-path actors, bucketed into four criticality classes.  The
// thresholds follow common AEB staging (comfort braking ~6 s, emergency
// ~3 s, imminent ~1.5 s).
#pragma once

#include "core/safety_monitor.h"
#include "sim/scenario.h"

namespace rrp::sim {

struct CriticalityConfig {
  double ttc_critical_s = 1.5;
  double ttc_high_s = 3.0;
  double ttc_medium_s = 6.0;
  /// A stationary in-path actor closer than this is High even with TTC=inf
  /// (the ego may accelerate; proximity alone is hazardous).
  double proximity_high_m = 8.0;
  double proximity_medium_m = 20.0;
};

/// Minimum TTC over in-path actors; +inf when nothing is closing.
double scene_min_ttc_s(const Scene& scene);

/// Classifies a scene into the four-level criticality ladder.
core::CriticalityClass classify_scene(const Scene& scene,
                                      const CriticalityConfig& config = {});

/// Precomputes the criticality trace of a whole scenario (oracle input).
std::vector<core::CriticalityClass> criticality_trace(
    const Scenario& scenario, const CriticalityConfig& config = {});

}  // namespace rrp::sim
