#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

namespace rrp::sim {

const char* actor_type_name(ActorType t) {
  switch (t) {
    case ActorType::Vehicle: return "vehicle";
    case ActorType::Pedestrian: return "pedestrian";
    case ActorType::Cyclist: return "cyclist";
    case ActorType::Obstacle: return "obstacle";
  }
  return "?";
}

const Actor* Scene::dominant() const {
  const Actor* best = nullptr;
  for (const Actor& a : actors) {
    if (std::fabs(a.lateral_m) > kCorridorHalfWidth_m) continue;
    if (a.distance_m > kSensorRange_m) continue;
    if (best == nullptr || a.distance_m < best->distance_m) best = &a;
  }
  return best;
}

void step_actors(Scene& scene, double dt_s) {
  for (Actor& a : scene.actors) a.distance_m -= a.closing_mps * dt_s;
  scene.actors.erase(
      std::remove_if(scene.actors.begin(), scene.actors.end(),
                     [](const Actor& a) { return a.distance_m <= 0.0; }),
      scene.actors.end());
}

}  // namespace rrp::sim
