// scenario.h — kinematic driving-scene model.
//
// Substitution note (see DESIGN.md): the paper's group evaluates on real
// driving stacks; we replace recorded traces with a kinematic scenario
// generator whose *criticality statistics* (bursts, dwell times, sudden
// onsets) drive the runtime controller the same way real traffic would.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rrp::sim {

/// What the perception network must recognize.
enum class ActorType : int {
  Vehicle = 0,
  Pedestrian = 1,
  Cyclist = 2,
  Obstacle = 3,
};

constexpr int kActorTypes = 4;
/// Classification label space: actor types plus "clear road".
constexpr int kNumClasses = kActorTypes + 1;
constexpr int kClearLabel = kActorTypes;  ///< label when no actor is relevant

const char* actor_type_name(ActorType t);

/// One traffic participant, relative to the ego vehicle.
struct Actor {
  ActorType type = ActorType::Vehicle;
  double distance_m = 50.0;    ///< longitudinal gap to ego (>= 0)
  double closing_mps = 0.0;    ///< positive = approaching the ego
  double lateral_m = 0.0;      ///< lateral offset from ego lane center
};

/// One frame of the world.
struct Scene {
  double time_s = 0.0;
  double ego_speed_mps = 25.0;
  double visibility = 1.0;  ///< 1 = clear; < 1 degrades the sensor image
  std::vector<Actor> actors;

  /// The actor that dominates both perception (label) and risk, i.e. the
  /// in-path actor with the smallest distance; nullptr when the road is
  /// clear (off-corridor or beyond-sensor-range actors do not count).
  const Actor* dominant() const;
};

/// A timed sequence of scenes (fixed frame interval).
struct Scenario {
  std::string name;
  double dt_s = 1.0 / 30.0;
  std::vector<Scene> scenes;

  std::size_t frame_count() const { return scenes.size(); }
};

/// Half-width of the corridor in which an actor is considered in-path.
constexpr double kCorridorHalfWidth_m = 1.8;

/// Perception range: actors beyond this are neither labelled nor scored
/// (matches the training distribution's distance span).
constexpr double kSensorRange_m = 55.0;

/// Advances every actor by dt with its closing speed; actors that pass
/// behind the ego (distance <= 0) are removed.
void step_actors(Scene& scene, double dt_s);

}  // namespace rrp::sim
