// scenario_gen.h — seeded, composable scenario DSL.
//
// The five hand-written suites (sim/suites.h) cover five fixed points of
// the scenario space; the statistical safety case (ROADMAP item 4) needs
// thousands of points.  This unit replaces hand-enumeration with a small
// DSL: a ScenarioSpec composes primitives — lead-vehicle dynamics, debris,
// urban traffic with density bursts, multi-actor cut-ins, lateral
// crossers, speed regimes, occlusion windows and visibility ramps — and
// generate_scenario() expands a (spec, seed) pair into a Scenario that is
// byte-deterministic in both arguments, for any RRP_THREADS.
//
// Determinism contract.  All "process" primitives draw from ONE main
// rrp::Rng stream, in primitive order, in a fixed per-frame phase order
// (pre-step draws → scene emit → kinematic step → post-step draws), so a
// spec's draw sequence is a pure function of the spec.  "Overlay"
// primitives (occlusion, visibility ramp) run as a post-pass over the
// emitted scenes with their own derived Rng streams, so adding an overlay
// never perturbs the underlying traffic.  Randomness only via the seeded
// util/rng.h API: src/sim/scenario_gen.* is deliberately NOT on the
// rrp_lint ambient-RNG or chrono whitelists.
//
// Parity.  Each legacy suite is expressible as a spec —
// builtin_scenario_spec("highway"|"urban"|"cut_in"|"degraded"|
// "intersection") — whose expansion is byte-identical to the legacy
// generator under the same (frames, seed) (parity-tested; the golden
// traces pin the legacy generators, the parity tests pin the DSL to them).
//
// Serialization.  encode_scenario_spec() renders a spec as one canonical
// line (sorted params, shortest round-trip doubles); parse_scenario_spec()
// inverts it.  The canonical line travels inside incident bundles as the
// suite string "dsl:<line>", so a worst-case campaign cell replays under
// `rrp_cli blackbox replay` with no side-channel files.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace rrp::sim {

/// One composable building block.  `kind` is one of the names returned by
/// scenario_primitive_kinds(); params not present take that kind's
/// defaults (which reproduce the legacy suites).  Unknown kinds or param
/// keys throw rrp::SerializationError — specs are validated, not guessed.
struct ScenarioPrimitive {
  std::string kind;
  std::map<std::string, double> params;  // sorted => canonical encoding

  double get(const std::string& key, double fallback) const;
};

/// A complete scenario description: base state plus primitive list.
struct ScenarioSpec {
  std::string name = "dsl";
  double dt_s = 1.0 / 30.0;
  double ego_speed_mps = 25.0;
  /// Base visibility, drawn uniformly in [vis_lo, vis_hi) at setup.
  double vis_lo = 0.85;
  double vis_hi = 1.0;
  /// Main-stream seed transform: the process primitives draw from
  /// Rng((seed ^ seed_xor) + seed_add).  Lets derived suites (degraded =
  /// urban under a different main seed + an overlay) stay one spec.
  std::uint64_t seed_xor = 0;
  std::uint64_t seed_add = 0;
  std::vector<ScenarioPrimitive> primitives;
};

/// All primitive kind names, in a fixed order (process kinds first).
const std::vector<std::string>& scenario_primitive_kinds();

/// Expands (spec, seed) into a Scenario.  Byte-deterministic; validates
/// the spec (throws rrp::SerializationError on unknown kinds/params).
Scenario generate_scenario(const ScenarioSpec& spec, int frames,
                           std::uint64_t seed);

/// Canonical one-line encoding; parse(encode(s)) == s and
/// encode(parse(l)) is a fixed point for any valid line l.
std::string encode_scenario_spec(const ScenarioSpec& spec);

/// Parses a canonical line (or any whitespace-separated key=value /
/// kind{k=v,…} sequence).  Throws rrp::SerializationError with a
/// diagnostic on malformed input.
ScenarioSpec parse_scenario_spec(const std::string& line);

/// Built-in spec library: the five legacy-suite parity specs plus
/// generated families ("swarm_cut_in", "rush_hour", "fog_ramp").
std::vector<std::string> builtin_scenario_names();
bool is_builtin_scenario(const std::string& name);
ScenarioSpec builtin_scenario_spec(const std::string& name);

/// The suite string an incident bundle carries for a DSL scenario:
/// "dsl:" + encode_scenario_spec(spec).
extern const char* const kDslSuitePrefix;
bool is_dsl_suite(const std::string& suite);
std::string dsl_suite_string(const ScenarioSpec& spec);

/// The shared scenario resolver: a legacy suite name (sim/suites.h), a
/// built-in spec name, or a "dsl:<line>" string.  Used by the blackbox
/// replayer, the fault campaign and the Monte-Carlo campaign driver, so
/// every consumer accepts the same vocabulary.
Scenario make_suite_or_dsl(const std::string& suite, int frames,
                           std::uint64_t seed);

}  // namespace rrp::sim
