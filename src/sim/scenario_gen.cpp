#include "sim/scenario_gen.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <memory>
#include <sstream>

#include "sim/suites.h"
#include "util/checks.h"
#include "util/rng.h"

namespace rrp::sim {

namespace {

// ---------------------------------------------------------------------------
// Canonical number formatting: shortest decimal that round-trips exactly.
// ---------------------------------------------------------------------------

std::string format_double(double v) {
  for (int prec = 15; prec <= 17; ++prec) {
    std::ostringstream os;
    os << std::setprecision(prec) << v;
    std::string s = os.str();
    std::size_t pos = 0;
    if (std::stod(s, &pos) == v && pos == s.size()) return s;
  }
  RRP_CHECK_MSG(false, "double failed to round-trip: " << v);
  return {};
}

double parse_double(const std::string& s, const std::string& what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos == s.size() && std::isfinite(v)) return v;
  } catch (const std::exception&) {
  }
  throw SerializationError("scenario spec: bad number '" + s + "' for " +
                           what);
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos, 0);
    if (pos == s.size()) return v;
  } catch (const std::exception&) {
  }
  throw SerializationError("scenario spec: bad integer '" + s + "' for " +
                           what);
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Primitive registry: kind names, overlay flag, known parameter keys.
// ---------------------------------------------------------------------------

struct KindInfo {
  bool overlay = false;
  std::vector<const char*> keys;
};

const std::map<std::string, KindInfo>& kind_table() {
  static const std::map<std::string, KindInfo> table = {
      {"lead_vehicle",
       {false,
        {"gap_lo", "gap_hi", "closing_jitter", "jitter_sigma", "closing_clamp",
         "brake_prob", "brake_lo", "brake_hi", "brake_frames_lo",
         "brake_frames_hi", "resolve_gap", "resolve_lo", "resolve_hi",
         "far_gap", "near_gap"}}},
      {"debris", {false, {"prob", "gap_lo", "gap_hi", "lat", "closing_frac",
                          "cap"}}},
      {"traffic",
       {false,
        {"spawn_prob", "max_actors", "vulnerable_frac", "vehicle_frac",
         "ped_frac", "gap_lo", "gap_hi", "lat", "closing_lo", "closing_hi",
         "drift_sigma", "brake_gap", "brake_prob", "brake_cap", "burst_period",
         "burst_len", "burst_factor"}}},
      {"cut_in",
       {false,
        {"period", "count", "gap_lo", "gap_hi", "closing_lo", "closing_hi",
         "lat", "resolve_gap", "resolve_lo", "resolve_hi", "drop_gap",
         "lead_gap"}}},
      {"crossers",
       {false,
        {"spawn_prob", "max_walkers", "ped_frac", "gap_lo", "gap_hi",
         "side_lo", "side_hi", "closing", "speed_lo", "speed_hi", "exit_lat",
         "exit_gap"}}},
      {"speed_regime", {false, {"target", "start", "end"}}},
      {"occlusion", {true, {"seed_offset", "prob", "len_lo", "len_hi",
                            "vis_lo", "vis_hi"}}},
      {"visibility_ramp", {true, {"to", "start", "end", "floor"}}},
  };
  return table;
}

const KindInfo& kind_info(const std::string& kind) {
  const auto it = kind_table().find(kind);
  if (it == kind_table().end())
    throw SerializationError("scenario spec: unknown primitive kind '" + kind +
                             "'");
  return it->second;
}

void validate_primitive(const ScenarioPrimitive& p) {
  const KindInfo& info = kind_info(p.kind);
  for (const auto& [key, value] : p.params) {
    (void)value;
    const bool known = std::find_if(info.keys.begin(), info.keys.end(),
                                    [&key](const char* k) {
                                      return key == k;
                                    }) != info.keys.end();
    if (!known)
      throw SerializationError("scenario spec: primitive '" + p.kind +
                               "' has no parameter '" + key + "'");
  }
}

void validate_spec(const ScenarioSpec& spec) {
  if (!valid_name(spec.name))
    throw SerializationError("scenario spec: bad name '" + spec.name + "'");
  if (!(spec.dt_s > 0.0))
    throw SerializationError("scenario spec: dt must be positive");
  if (!(spec.vis_lo <= spec.vis_hi) || spec.vis_lo <= 0.0 ||
      spec.vis_hi > 1.0)
    throw SerializationError(
        "scenario spec: vis range must satisfy 0 < lo <= hi <= 1");
  for (const ScenarioPrimitive& p : spec.primitives) validate_primitive(p);
}

// ---------------------------------------------------------------------------
// Primitive engines.  Process primitives share ONE main Rng stream in a
// fixed phase order per frame (pre_step → project → emit → step_actors →
// post_step); each phase replicates the exact draw order of the legacy
// suite it descends from, so the parity specs are byte-identical.
// ---------------------------------------------------------------------------

class Primitive {
 public:
  explicit Primitive(const ScenarioPrimitive& p) : p_(p) {}
  virtual ~Primitive() = default;

  /// One-time draws before the first frame (initial actors).
  virtual void setup(Scene& s, Rng& rng, int frames) {
    (void)s, (void)rng, (void)frames;
  }
  /// Per-frame draws/mutations on the persistent scene, before emission.
  virtual void pre_step(int f, double dt, Scene& s, Rng& rng) {
    (void)f, (void)dt, (void)s, (void)rng;
  }
  /// Appends transient actors to the EMITTED copy only (crossers): the
  /// persistent scene never sees them, so step_actors leaves them alone.
  virtual void project(Scene& out) { (void)out; }
  /// Per-frame cleanup after step_actors (respawns, internal kinematics).
  virtual void post_step(int f, double dt, Scene& s, Rng& rng) {
    (void)f, (void)dt, (void)s, (void)rng;
  }
  /// Overlay pass over the emitted scenario (own derived Rng stream).
  virtual void overlay(Scenario& sc, Rng& rng) { (void)sc, (void)rng; }

 protected:
  double get(const char* key, double fallback) const {
    return p_.get(key, fallback);
  }

 private:
  ScenarioPrimitive p_;
};

/// Persistent lead that mostly keeps its gap; rare hard-braking events.
/// Parity: make_highway's lead logic, draw for draw.
class LeadVehiclePrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void setup(Scene& s, Rng& rng, int) override {
    s.actors.push_back(spawn(rng));
  }

  void pre_step(int, double, Scene& s, Rng& rng) override {
    if (s.actors.empty() || s.actors.front().type != ActorType::Vehicle)
      return;  // composed specs only; the parity spec always has a lead
    Actor& l = s.actors.front();
    if (braking_left_ > 0) {
      --braking_left_;
      if (l.distance_m < get("resolve_gap", 14.0) || braking_left_ == 0) {
        l.closing_mps =
            rng.uniform(get("resolve_lo", -4.0), get("resolve_hi", -2.0));
        braking_left_ = 0;
      }
    } else {
      l.closing_mps += rng.normal(0.0, get("jitter_sigma", 0.15));
      const double clamp = get("closing_clamp", 2.0);
      l.closing_mps = std::clamp(l.closing_mps, -clamp, clamp);
      if (rng.bernoulli(get("brake_prob", 0.004))) {
        l.closing_mps = rng.uniform(get("brake_lo", 7.0), get("brake_hi", 11.0));
        braking_left_ =
            rng.uniform_int(static_cast<int>(get("brake_frames_lo", 45.0)),
                            static_cast<int>(get("brake_frames_hi", 120.0)));
      }
    }
    if (l.distance_m > get("far_gap", 75.0))
      l.closing_mps = std::max(l.closing_mps, 0.5);
    if (l.distance_m < get("near_gap", 8.0))
      l.closing_mps = std::min(l.closing_mps, -1.0);
  }

  void post_step(int, double, Scene& s, Rng& rng) override {
    if (s.actors.empty() || s.actors.front().type != ActorType::Vehicle)
      s.actors.insert(s.actors.begin(), spawn(rng));
  }

 private:
  Actor spawn(Rng& rng) {
    Actor lead;
    lead.type = ActorType::Vehicle;
    lead.distance_m = rng.uniform(get("gap_lo", 45.0), get("gap_hi", 65.0));
    const double jitter = get("closing_jitter", 0.5);
    lead.closing_mps = rng.uniform(-jitter, jitter);
    return lead;
  }

  int braking_left_ = 0;
};

/// Occasional road debris far ahead.  Parity: make_highway's debris spawn.
class DebrisPrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void pre_step(int, double, Scene& s, Rng& rng) override {
    if (s.actors.size() <= static_cast<std::size_t>(get("cap", 1.0)) &&
        rng.bernoulli(get("prob", 0.002))) {
      Actor debris;
      debris.type = ActorType::Obstacle;
      debris.distance_m = rng.uniform(get("gap_lo", 40.0), get("gap_hi", 60.0));
      debris.closing_mps = s.ego_speed_mps * get("closing_frac", 0.4);
      const double lat = get("lat", 1.0);
      debris.lateral_m = rng.uniform(-lat, lat);
      s.actors.push_back(debris);
    }
  }
};

/// Urban traffic: mixed spawns, lateral drift, near-range braking, with
/// optional density bursts (spawn probability multiplied inside periodic
/// windows — no extra draws, so burst_period=0 is stream-identical to the
/// legacy generator).  Parity: make_urban.
class TrafficPrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void pre_step(int f, double, Scene& s, Rng& rng) override {
    double p = get("spawn_prob", 0.03);
    const int period = static_cast<int>(get("burst_period", 0.0));
    if (period > 0 && f % period < static_cast<int>(get("burst_len", 0.0)))
      p = std::min(1.0, p * get("burst_factor", 1.0));
    if (s.actors.size() < static_cast<std::size_t>(get("max_actors", 3.0)) &&
        rng.bernoulli(p)) {
      Actor a;
      const double roll = rng.uniform();
      if (roll < get("vulnerable_frac", 0.55))
        a.type = rng.bernoulli(get("ped_frac", 0.6)) ? ActorType::Pedestrian
                                                     : ActorType::Cyclist;
      else if (roll < get("vehicle_frac", 0.85))
        a.type = ActorType::Vehicle;
      else
        a.type = ActorType::Obstacle;
      a.distance_m = rng.uniform(get("gap_lo", 18.0), get("gap_hi", 40.0));
      const double lat = get("lat", 3.0);
      a.lateral_m = rng.uniform(-lat, lat);
      a.closing_mps = rng.uniform(get("closing_lo", 2.0), get("closing_hi", 7.0));
      s.actors.push_back(a);
    }
    for (Actor& a : s.actors) {
      if (a.type == ActorType::Pedestrian || a.type == ActorType::Cyclist)
        a.lateral_m += rng.normal(0.0, get("drift_sigma", 0.08));
      if (a.distance_m < get("brake_gap", 6.0) &&
          rng.bernoulli(get("brake_prob", 0.3)))
        a.closing_mps = std::min(a.closing_mps, get("brake_cap", 1.0));
    }
  }
};

/// Scripted (multi-actor) cut-ins at a fixed cadence, resolving once
/// close; keeps a calm background lead alive.  Parity: make_cut_in with
/// count=1 and period=0 (0 derives the legacy max(180, frames/4)).
class CutInPrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void setup(Scene& s, Rng&, int frames) override {
    period_ = static_cast<int>(get("period", 0.0));
    if (period_ <= 0) period_ = std::max(180, frames / 4);
    s.actors.push_back(background_lead());
  }

  void pre_step(int f, double, Scene& s, Rng& rng) override {
    if (f > 0 && f % period_ == period_ / 2) {
      const int count = std::max(1, static_cast<int>(get("count", 1.0)));
      for (int i = 0; i < count; ++i) {
        Actor cut;
        cut.type = ActorType::Vehicle;
        cut.distance_m = rng.uniform(get("gap_lo", 18.0), get("gap_hi", 30.0));
        cut.closing_mps =
            rng.uniform(get("closing_lo", 8.0), get("closing_hi", 14.0));
        const double lat = get("lat", 0.8);
        cut.lateral_m = rng.uniform(-lat, lat);
        s.actors.push_back(cut);
      }
    }
    for (Actor& a : s.actors)
      if (a.distance_m < get("resolve_gap", 8.0) && a.closing_mps > 0.0)
        a.closing_mps = rng.uniform(get("resolve_lo", -6.0), get("resolve_hi", -4.0));
  }

  void post_step(int, double, Scene& s, Rng&) override {
    const double drop = get("drop_gap", 90.0);
    s.actors.erase(std::remove_if(s.actors.begin(), s.actors.end(),
                                  [drop](const Actor& a) {
                                    return a.distance_m > drop;
                                  }),
                   s.actors.end());
    if (s.actors.empty()) s.actors.push_back(background_lead());
  }

 private:
  Actor background_lead() const {
    Actor lead;
    lead.type = ActorType::Vehicle;
    lead.distance_m = get("lead_gap", 60.0);
    lead.closing_mps = 0.0;
    return lead;
  }

  int period_ = 180;
};

/// Pedestrians/cyclists crossing the corridor LATERALLY.  Walkers are
/// internal (projected into emitted scenes only), so step_actors never
/// touches them — parity: make_intersection's Walker list.
class CrossersPrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void pre_step(int, double, Scene&, Rng& rng) override {
    if (walkers_.size() <
            static_cast<std::size_t>(get("max_walkers", 2.0)) &&
        rng.bernoulli(get("spawn_prob", 0.02))) {
      Walker w;
      w.actor.type = rng.bernoulli(get("ped_frac", 0.6))
                         ? ActorType::Pedestrian
                         : ActorType::Cyclist;
      w.actor.distance_m = rng.uniform(get("gap_lo", 6.0), get("gap_hi", 18.0));
      const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
      w.actor.lateral_m =
          side * rng.uniform(get("side_lo", 3.0), get("side_hi", 4.5));
      const double closing = get("closing", 0.5);
      w.actor.closing_mps = rng.uniform(-closing, closing);
      w.lateral_mps = -side * rng.uniform(get("speed_lo", 1.0), get("speed_hi", 2.0));
      walkers_.push_back(w);
    }
  }

  void project(Scene& out) override {
    for (const Walker& w : walkers_) out.actors.push_back(w.actor);
  }

  void post_step(int, double dt, Scene&, Rng&) override {
    for (Walker& w : walkers_) {
      w.actor.lateral_m += w.lateral_mps * dt;
      w.actor.distance_m -= w.actor.closing_mps * dt;
    }
    const double exit_lat = get("exit_lat", 5.0);
    const double exit_gap = get("exit_gap", 0.5);
    walkers_.erase(std::remove_if(walkers_.begin(), walkers_.end(),
                                  [exit_lat, exit_gap](const Walker& w) {
                                    return std::fabs(w.actor.lateral_m) >
                                               exit_lat ||
                                           w.actor.distance_m <= exit_gap;
                                  }),
                   walkers_.end());
  }

 private:
  struct Walker {
    Actor actor;
    double lateral_mps = 0.0;
  };
  std::vector<Walker> walkers_;
};

/// Deterministic ego-speed profile: linear ramp from the spec's base speed
/// to `target` over the [start, end] fraction of the run.  No draws.
class SpeedRegimePrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void setup(Scene& s, Rng&, int frames) override {
    base_ = s.ego_speed_mps;
    frames_ = frames;
  }

  void pre_step(int f, double, Scene& s, Rng&) override {
    const double target = get("target", base_);
    const double start = get("start", 0.0);
    const double end = get("end", 1.0);
    const double t =
        frames_ > 1 ? static_cast<double>(f) / (frames_ - 1) : 1.0;
    const double span = std::max(1e-9, end - start);
    const double a = std::clamp((t - start) / span, 0.0, 1.0);
    s.ego_speed_mps = base_ + (target - base_) * a;
  }

 private:
  double base_ = 0.0;
  int frames_ = 1;
};

/// Overlay: visibility drop windows (fog banks / glare).  Parity:
/// make_degraded's post-pass with its own Rng(seed + seed_offset) stream.
class OcclusionPrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void overlay(Scenario& sc, Rng& rng) override {
    int window_left = 0;
    double window_vis = 1.0;
    for (Scene& s : sc.scenes) {
      if (window_left == 0 && rng.bernoulli(get("prob", 0.01))) {
        window_left =
            rng.uniform_int(static_cast<int>(get("len_lo", 90.0)),
                            static_cast<int>(get("len_hi", 240.0)));
        window_vis = rng.uniform(get("vis_lo", 0.55), get("vis_hi", 0.7));
      }
      if (window_left > 0) {
        --window_left;
        s.visibility = window_vis;
      }
    }
  }
};

/// Overlay: deterministic visibility ramp (dusk / worsening weather).
/// Multiplies visibility by a factor sliding from 1 to `to` over the
/// [start, end] fraction of the run; no draws.
class VisibilityRampPrim final : public Primitive {
 public:
  using Primitive::Primitive;

  void overlay(Scenario& sc, Rng&) override {
    const double to = get("to", 0.6);
    const double start = get("start", 0.0);
    const double end = get("end", 1.0);
    const double floor = get("floor", 0.05);
    const int n = static_cast<int>(sc.scenes.size());
    for (int f = 0; f < n; ++f) {
      const double t = n > 1 ? static_cast<double>(f) / (n - 1) : 1.0;
      const double span = std::max(1e-9, end - start);
      const double a = std::clamp((t - start) / span, 0.0, 1.0);
      const double factor = 1.0 + (to - 1.0) * a;
      Scene& s = sc.scenes[f];
      s.visibility = std::clamp(s.visibility * factor, floor, 1.0);
    }
  }
};

std::unique_ptr<Primitive> make_primitive(const ScenarioPrimitive& p) {
  if (p.kind == "lead_vehicle") return std::make_unique<LeadVehiclePrim>(p);
  if (p.kind == "debris") return std::make_unique<DebrisPrim>(p);
  if (p.kind == "traffic") return std::make_unique<TrafficPrim>(p);
  if (p.kind == "cut_in") return std::make_unique<CutInPrim>(p);
  if (p.kind == "crossers") return std::make_unique<CrossersPrim>(p);
  if (p.kind == "speed_regime") return std::make_unique<SpeedRegimePrim>(p);
  if (p.kind == "occlusion") return std::make_unique<OcclusionPrim>(p);
  if (p.kind == "visibility_ramp")
    return std::make_unique<VisibilityRampPrim>(p);
  throw SerializationError("scenario spec: unknown primitive kind '" +
                           p.kind + "'");
}

ScenarioPrimitive prim(std::string kind,
                       std::map<std::string, double> params = {}) {
  ScenarioPrimitive p;
  p.kind = std::move(kind);
  p.params = std::move(params);
  return p;
}

}  // namespace

double ScenarioPrimitive::get(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

const std::vector<std::string>& scenario_primitive_kinds() {
  static const std::vector<std::string> kinds = {
      "lead_vehicle", "debris",       "traffic",   "cut_in",
      "crossers",     "speed_regime", "occlusion", "visibility_ramp"};
  return kinds;
}

Scenario generate_scenario(const ScenarioSpec& spec, int frames,
                           std::uint64_t seed) {
  RRP_CHECK(frames > 0);
  validate_spec(spec);

  Scenario sc;
  sc.name = spec.name;
  sc.dt_s = spec.dt_s;
  sc.scenes.reserve(static_cast<std::size_t>(frames));

  // The ONE main stream every process primitive draws from, in spec order.
  Rng rng((seed ^ spec.seed_xor) + spec.seed_add);
  Scene s;
  s.ego_speed_mps = spec.ego_speed_mps;
  s.visibility = rng.uniform(spec.vis_lo, spec.vis_hi);

  std::vector<std::unique_ptr<Primitive>> process;
  // Overlays keep their position among ALL primitives for the derived-seed
  // default, but run as a post-pass in spec order.
  std::vector<std::pair<std::size_t, std::unique_ptr<Primitive>>> overlays;
  std::vector<std::uint64_t> overlay_offsets;
  for (std::size_t i = 0; i < spec.primitives.size(); ++i) {
    const ScenarioPrimitive& p = spec.primitives[i];
    if (kind_info(p.kind).overlay) {
      const double fallback = 1000003.0 * static_cast<double>(i + 1);
      overlay_offsets.push_back(
          static_cast<std::uint64_t>(p.get("seed_offset", fallback)));
      overlays.emplace_back(i, make_primitive(p));
    } else {
      process.push_back(make_primitive(p));
    }
  }

  for (auto& p : process) p->setup(s, rng, frames);

  for (int f = 0; f < frames; ++f) {
    s.time_s = f * spec.dt_s;
    for (auto& p : process) p->pre_step(f, spec.dt_s, s, rng);
    Scene out = s;
    for (auto& p : process) p->project(out);
    sc.scenes.push_back(std::move(out));
    step_actors(s, spec.dt_s);
    for (auto& p : process) p->post_step(f, spec.dt_s, s, rng);
  }

  for (std::size_t o = 0; o < overlays.size(); ++o) {
    Rng orng(seed + overlay_offsets[o]);
    overlays[o].second->overlay(sc, orng);
  }
  return sc;
}

std::string encode_scenario_spec(const ScenarioSpec& spec) {
  validate_spec(spec);
  std::ostringstream os;
  os << "name=" << spec.name;
  os << " ego=" << format_double(spec.ego_speed_mps);
  os << " vis=" << format_double(spec.vis_lo) << ','
     << format_double(spec.vis_hi);
  if (spec.dt_s != 1.0 / 30.0) os << " dt=" << format_double(spec.dt_s);
  if (spec.seed_xor != 0) os << " seed_xor=" << spec.seed_xor;
  if (spec.seed_add != 0) os << " seed_add=" << spec.seed_add;
  for (const ScenarioPrimitive& p : spec.primitives) {
    os << ' ' << p.kind << '{';
    bool first = true;
    for (const auto& [key, value] : p.params) {
      if (!first) os << ',';
      os << key << '=' << format_double(value);
      first = false;
    }
    os << '}';
  }
  return os.str();
}

ScenarioSpec parse_scenario_spec(const std::string& line) {
  ScenarioSpec spec;
  spec.name.clear();  // a spec line must name itself

  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const std::size_t brace = token.find('{');
    if (brace != std::string::npos) {
      if (token.back() != '}')
        throw SerializationError("scenario spec: unterminated primitive '" +
                                 token + "'");
      ScenarioPrimitive p;
      p.kind = token.substr(0, brace);
      const std::string inner =
          token.substr(brace + 1, token.size() - brace - 2);
      std::size_t pos = 0;
      while (pos < inner.size()) {
        std::size_t comma = inner.find(',', pos);
        if (comma == std::string::npos) comma = inner.size();
        const std::string kv = inner.substr(pos, comma - pos);
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0)
          throw SerializationError(
              "scenario spec: bad primitive parameter '" + kv + "' in '" +
              token + "'");
        p.params[kv.substr(0, eq)] =
            parse_double(kv.substr(eq + 1), p.kind + "." + kv.substr(0, eq));
        pos = comma + 1;
      }
      validate_primitive(p);
      spec.primitives.push_back(std::move(p));
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw SerializationError("scenario spec: bad token '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "name") {
      spec.name = value;
    } else if (key == "ego") {
      spec.ego_speed_mps = parse_double(value, "ego");
    } else if (key == "dt") {
      spec.dt_s = parse_double(value, "dt");
    } else if (key == "vis") {
      const std::size_t comma = value.find(',');
      if (comma == std::string::npos)
        throw SerializationError(
            "scenario spec: vis needs 'lo,hi', got '" + value + "'");
      spec.vis_lo = parse_double(value.substr(0, comma), "vis lo");
      spec.vis_hi = parse_double(value.substr(comma + 1), "vis hi");
    } else if (key == "seed_xor") {
      spec.seed_xor = parse_u64(value, "seed_xor");
    } else if (key == "seed_add") {
      spec.seed_add = parse_u64(value, "seed_add");
    } else {
      throw SerializationError("scenario spec: unknown key '" + key + "'");
    }
  }
  if (spec.name.empty())
    throw SerializationError("scenario spec: missing 'name=<id>'");
  validate_spec(spec);
  return spec;
}

std::vector<std::string> builtin_scenario_names() {
  return {"highway",  "urban",        "cut_in",    "degraded",
          "intersection", "swarm_cut_in", "rush_hour", "fog_ramp"};
}

bool is_builtin_scenario(const std::string& name) {
  const std::vector<std::string> names = builtin_scenario_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

ScenarioSpec builtin_scenario_spec(const std::string& name) {
  ScenarioSpec s;
  s.name = name;
  if (name == "highway") {
    s.ego_speed_mps = 30.0;
    s.vis_lo = 0.85;
    s.vis_hi = 1.0;
    s.primitives = {prim("lead_vehicle"), prim("debris")};
    return s;
  }
  if (name == "urban") {
    s.ego_speed_mps = 12.0;
    s.vis_lo = 0.8;
    s.vis_hi = 1.0;
    s.primitives = {prim("traffic")};
    return s;
  }
  if (name == "cut_in") {
    s.ego_speed_mps = 25.0;
    s.vis_lo = 0.85;
    s.vis_hi = 1.0;
    s.primitives = {prim("cut_in")};
    return s;
  }
  if (name == "degraded") {
    // Urban traffic under a transformed main seed + occlusion windows on
    // the original seed + 17: exactly make_degraded's two streams.
    s.ego_speed_mps = 12.0;
    s.vis_lo = 0.8;
    s.vis_hi = 1.0;
    s.seed_xor = 0xDE6BADEDull;
    s.primitives = {prim("traffic"), prim("occlusion", {{"seed_offset", 17.0}})};
    return s;
  }
  if (name == "intersection") {
    s.ego_speed_mps = 8.0;
    s.vis_lo = 0.8;
    s.vis_hi = 1.0;
    s.primitives = {prim("crossers")};
    return s;
  }
  if (name == "swarm_cut_in") {
    // Multi-actor cut-ins over light traffic: several vehicles swerve in
    // per event, so criticality stacks faster than any single resolve.
    s.ego_speed_mps = 25.0;
    s.vis_lo = 0.8;
    s.vis_hi = 1.0;
    s.primitives = {prim("cut_in", {{"period", 150.0}, {"count", 3.0}}),
                    prim("traffic", {{"spawn_prob", 0.01}, {"max_actors", 2.0}})};
    return s;
  }
  if (name == "rush_hour") {
    // Dense bursty traffic + crossers while the ego decelerates into the
    // jam: sustained High/Critical pressure on the controller.
    s.ego_speed_mps = 10.0;
    s.vis_lo = 0.75;
    s.vis_hi = 1.0;
    s.primitives = {
        prim("traffic", {{"spawn_prob", 0.05},
                         {"max_actors", 5.0},
                         {"burst_period", 300.0},
                         {"burst_len", 120.0},
                         {"burst_factor", 2.5}}),
        prim("crossers", {{"spawn_prob", 0.015}}),
        prim("speed_regime", {{"target", 6.0}, {"start", 0.2}, {"end", 0.8}})};
    return s;
  }
  if (name == "fog_ramp") {
    // Urban traffic while visibility ramps down and fog banks roll in:
    // the perception-degradation axis of the campaign.
    s.ego_speed_mps = 14.0;
    s.vis_lo = 0.85;
    s.vis_hi = 1.0;
    s.primitives = {
        prim("traffic"),
        prim("visibility_ramp", {{"to", 0.45}, {"start", 0.1}, {"end", 0.6}}),
        prim("occlusion", {{"prob", 0.02},
                           {"vis_lo", 0.4},
                           {"vis_hi", 0.6},
                           {"seed_offset", 23.0}})};
    return s;
  }
  throw SerializationError("unknown built-in scenario '" + name + "'");
}

const char* const kDslSuitePrefix = "dsl:";

bool is_dsl_suite(const std::string& suite) {
  return suite.rfind(kDslSuitePrefix, 0) == 0;
}

std::string dsl_suite_string(const ScenarioSpec& spec) {
  return std::string(kDslSuitePrefix) + encode_scenario_spec(spec);
}

Scenario make_suite_or_dsl(const std::string& suite, int frames,
                           std::uint64_t seed) {
  if (is_dsl_suite(suite)) {
    const ScenarioSpec spec =
        parse_scenario_spec(suite.substr(std::string(kDslSuitePrefix).size()));
    return generate_scenario(spec, frames, seed);
  }
  // The five legacy names keep their original generators (pinned by golden
  // traces); the parity tests prove the DSL specs expand identically.
  if (suite == "highway") return make_highway(frames, seed);
  if (suite == "urban") return make_urban(frames, seed);
  if (suite == "cut_in") return make_cut_in(frames, seed);
  if (suite == "degraded") return make_degraded(frames, seed);
  if (suite == "intersection") return make_intersection(frames, seed);
  if (is_builtin_scenario(suite))
    return generate_scenario(builtin_scenario_spec(suite), frames, seed);
  RRP_CHECK_MSG(false, "unknown scenario suite '" << suite << "'");
  return {};
}

}  // namespace rrp::sim
