#include "sim/incident_replay.h"

#include <memory>
#include <sstream>

#include "core/controller.h"
#include "core/integrity.h"
#include "core/metrics.h"
#include "core/policies.h"
#include "core/reversible_pruner.h"
#include "sim/scenario_gen.h"
#include "util/checks.h"
#include "util/trace.h"

namespace rrp::sim {
namespace {

Scenario blackbox_suite(const std::string& name, int frames,
                        std::uint64_t seed) {
  // Legacy suite names, built-in spec names and "dsl:<line>" strings all
  // resolve through the shared DSL resolver, so a campaign worst-cell
  // bundle replays with no side-channel files.
  return make_suite_or_dsl(name, frames, seed);
}

std::unique_ptr<core::Policy> blackbox_policy(const std::string& name,
                                              const core::SafetyConfig& certified,
                                              int hysteresis, int level_count) {
  if (name.rfind("fixed", 0) == 0) {
    int level = 0;
    for (std::size_t i = 5; i < name.size(); ++i) {
      RRP_CHECK_MSG(name[i] >= '0' && name[i] <= '9',
                    "bad fixed policy spec '" << name << "'");
      level = level * 10 + (name[i] - '0');
    }
    RRP_CHECK_MSG(level < level_count,
                  "fixed policy level " << level << " outside ladder");
    return std::make_unique<core::FixedPolicy>(level);
  }
  RRP_CHECK_MSG(name == "greedy",
                "unknown blackbox policy '" << name << "' (greedy|fixed<K>)");
  return std::make_unique<core::CriticalityGreedyPolicy>(certified, hysteresis,
                                                         level_count);
}

std::uint64_t telemetry_digest(const core::Telemetry& telemetry) {
  std::ostringstream os;
  telemetry.write_csv(os);
  const std::string csv = os.str();
  return core::fnv1a64(csv.data(), csv.size());
}

std::string bundle_bytes(const core::IncidentBundle& bundle) {
  std::ostringstream os;
  core::write_incident_bundle(bundle, os);
  return os.str();
}

}  // namespace

core::RecordedFault to_recorded_fault(const FaultEvent& e) {
  core::RecordedFault r;
  r.kind = static_cast<std::int32_t>(e.kind);
  r.frame = e.frame;
  r.duration_frames = e.duration_frames;
  r.magnitude = e.magnitude;
  r.target = e.target;
  r.bit = e.bit;
  r.stuck = static_cast<std::int32_t>(e.stuck);
  r.count = e.count;
  return r;
}

FaultEvent from_recorded_fault(const core::RecordedFault& r) {
  RRP_CHECK_MSG(r.kind >= 0 && r.kind < kFaultKinds,
                "recorded fault kind " << r.kind << " out of range");
  RRP_CHECK_MSG(r.stuck >= 0 && r.stuck < core::kCriticalityClasses,
                "recorded fault criticality " << r.stuck << " out of range");
  FaultEvent e;
  e.kind = static_cast<FaultKind>(r.kind);
  e.frame = r.frame;
  e.duration_frames = r.duration_frames;
  e.magnitude = r.magnitude;
  e.target = r.target;
  e.bit = r.bit;
  e.stuck = static_cast<core::CriticalityClass>(r.stuck);
  e.count = r.count;
  return e;
}

std::vector<core::RecordedFault> record_fault_plan(const FaultPlan& plan) {
  std::vector<core::RecordedFault> v;
  v.reserve(plan.events.size());
  for (const FaultEvent& e : plan.events) v.push_back(to_recorded_fault(e));
  return v;
}

FaultPlan fault_plan_from_recorded(const std::vector<core::RecordedFault>& v) {
  FaultPlan plan;
  for (const core::RecordedFault& r : v) plan.add(from_recorded_fault(r));
  return plan;
}

BlackboxRunSpec spec_from_bundle(const core::IncidentBundle& bundle) {
  const core::IncidentContext& c = bundle.context;
  BlackboxRunSpec spec;
  spec.model = c.model;
  spec.suite = c.suite;
  spec.policy = c.policy;
  spec.frames = c.frames;
  spec.scenario_seed = c.scenario_seed;
  spec.noise_seed = c.noise_seed;
  spec.deadline_ms = c.deadline_ms;
  spec.hysteresis = c.hysteresis;
  spec.scrub_period_frames = c.scrub_period_frames;
  spec.watchdog_overrun_frames = c.watchdog_overrun_frames;
  spec.sensing_delay_frames = c.sensing_delay_frames;
  spec.self_heal = c.self_heal;
  spec.trace_enabled = c.trace_enabled;
  spec.recorder_capacity = c.recorder_capacity;
  spec.faults = fault_plan_from_recorded(bundle.faults);
  spec.slos = bundle.slos;
  return spec;
}

BlackboxRunResult run_blackbox(const BlackboxRunSpec& spec,
                               const CampaignInputs& inputs) {
  RRP_CHECK_MSG(inputs.net != nullptr && inputs.levels != nullptr,
                "blackbox run needs a provisioned network and level library");
  RRP_CHECK(spec.frames > 0);
  RRP_CHECK(spec.recorder_capacity > 0);

  // Faults corrupt the live network and possibly the golden store; restore
  // the caller's network bit-exact afterwards (same idiom as the campaign).
  const core::WeightStore pristine = core::WeightStore::snapshot(*inputs.net);
  const bool trace_was = trace::enabled();
  core::reset_observability();
  trace::set_enabled(spec.trace_enabled);

  BlackboxRunResult out;
  core::FlightRecorder recorder(spec.recorder_capacity);
  core::SloMonitor slo(spec.slos.empty() ? core::standard_slos() : spec.slos);
  {
    core::ReversiblePruner rp(*inputs.net, *inputs.levels);
    if (!inputs.bn_states.empty()) rp.set_bn_states(inputs.bn_states);
    core::IntegrityChecker checker(rp.store());

    std::unique_ptr<core::Policy> policy = blackbox_policy(
        spec.policy, inputs.certified, spec.hysteresis, rp.level_count());
    core::SafetyMonitor monitor(inputs.certified);
    core::RuntimeController controller(*policy, rp, &monitor);

    FaultHarness harness;
    harness.targets.live_net = &rp.network();
    harness.targets.store = &rp.mutable_store();
    harness.checker = &checker;
    harness.levels = inputs.levels;

    RunConfig rc;
    rc.deadline_ms = spec.deadline_ms;
    rc.sensing_delay_frames = spec.sensing_delay_frames;
    rc.faults = spec.faults;
    rc.scrub_period_frames = spec.scrub_period_frames;
    rc.self_heal = spec.self_heal;
    rc.watchdog_overrun_frames = spec.watchdog_overrun_frames;
    rc.noise_seed = spec.noise_seed;
    rc.flight_recorder = &recorder;
    rc.slo = &slo;

    const Scenario scenario =
        blackbox_suite(spec.suite, spec.frames, spec.scenario_seed);
    out.run = run_scenario(scenario, controller, rc, &harness);
  }
  pristine.restore_all(*inputs.net);

  core::IncidentContext ctx;
  ctx.model = spec.model;
  ctx.suite = spec.suite;
  ctx.policy = spec.policy;
  ctx.provider = out.run.provider;
  ctx.frames = spec.frames;
  ctx.scenario_seed = spec.scenario_seed;
  ctx.noise_seed = spec.noise_seed;
  ctx.deadline_ms = spec.deadline_ms;
  ctx.hysteresis = spec.hysteresis;
  ctx.scrub_period_frames = spec.scrub_period_frames;
  ctx.watchdog_overrun_frames = spec.watchdog_overrun_frames;
  ctx.sensing_delay_frames = spec.sensing_delay_frames;
  ctx.self_heal = spec.self_heal;
  ctx.trace_enabled = spec.trace_enabled;
  for (int c = 0; c < core::kCriticalityClasses; ++c)
    ctx.certified[static_cast<std::size_t>(c)] =
        inputs.certified.max_level_for[static_cast<std::size_t>(c)];
  ctx.recorder_capacity = static_cast<std::uint32_t>(spec.recorder_capacity);
  ctx.telemetry_digest = telemetry_digest(out.run.telemetry);

  out.bundle.context = ctx;
  out.bundle.faults = record_fault_plan(spec.faults);
  out.bundle.slos = slo.specs();
  out.bundle.incidents = slo.incidents();
  out.bundle.dropped_incidents = slo.dropped_incidents();
  out.bundle.records = recorder.window();
  out.incident = slo.any_incident();

  trace::set_enabled(trace_was);
  core::reset_observability();
  return out;
}

ReplayResult replay_bundle(const core::IncidentBundle& bundle,
                           const CampaignInputs& inputs) {
  const BlackboxRunSpec spec = spec_from_bundle(bundle);
  const BlackboxRunResult rerun = run_blackbox(spec, inputs);

  ReplayResult res;
  res.recorded_csv = core::incident_csv_string(bundle);
  res.replayed_csv = core::incident_csv_string(rerun.bundle);
  res.records_match = res.recorded_csv == res.replayed_csv;
  res.recorded_telemetry_digest = bundle.context.telemetry_digest;
  res.replayed_telemetry_digest = rerun.bundle.context.telemetry_digest;
  res.telemetry_match =
      res.recorded_telemetry_digest == res.replayed_telemetry_digest;
  res.incidents_match =
      bundle.incidents.size() == rerun.bundle.incidents.size();
  if (res.incidents_match) {
    for (std::size_t i = 0; i < bundle.incidents.size(); ++i) {
      const core::Incident& a = bundle.incidents[i];
      const core::Incident& b = rerun.bundle.incidents[i];
      if (a.frame != b.frame || a.slo_id != b.slo_id ||
          a.observed != b.observed || a.threshold != b.threshold ||
          a.detail != b.detail) {
        res.incidents_match = false;
        break;
      }
    }
  }
  // The headline assertion: the whole replayed bundle re-serializes to the
  // recorded bundle's exact bytes.
  res.match = bundle_bytes(bundle) == bundle_bytes(rerun.bundle);
  res.summary = rerun.run.summary;
  return res;
}

}  // namespace rrp::sim
