// suites.h — the five scenario suites of the evaluation.
//
//  highway   — fast cruise, long gaps, occasional lead-vehicle braking
//  urban     — slow, dense, pedestrians/cyclists entering the corridor
//  cut_in    — scripted sudden cut-ins: the canonical "back to the future"
//              moment where criticality jumps Low→Critical within frames
//  degraded  — urban traffic under visibility drops (sensor degradation)
//  intersection — crossing pedestrians at a junction (lateral criticality)
//
// All generators are deterministic in (frames, seed).
#pragma once

#include "sim/scenario.h"

namespace rrp::sim {

Scenario make_highway(int frames, std::uint64_t seed);
Scenario make_urban(int frames, std::uint64_t seed);
Scenario make_cut_in(int frames, std::uint64_t seed);
Scenario make_degraded(int frames, std::uint64_t seed);

/// Junction approach: pedestrians/cyclists cross the corridor LATERALLY at
/// short range, so criticality comes and goes with lateral position rather
/// than closing speed — stresses the controller's restore/re-prune cycle.
Scenario make_intersection(int frames, std::uint64_t seed);

/// All five suites with derived seeds, in the order above.
std::vector<Scenario> standard_suites(int frames, std::uint64_t base_seed);

}  // namespace rrp::sim
