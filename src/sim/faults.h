// faults.h — deterministic fault injection for the closed loop.
//
// The safety story of reversible pruning is only credible if the loop is
// exercised UNDER faults: single-event upsets in weight memory (live
// network and golden store), stuck/stale criticality sensing, latency
// spikes, dropped controller decisions, sensor blackouts and transient
// artifact-read failures.  A FaultPlan is a seeded, reproducible schedule
// of such faults; the runner applies them at frame boundaries via a
// FaultInjector, and the integrity layer (core/integrity.h) detects and
// repairs the weight faults — O(Δ) for the reversible provider versus a
// full artifact reload for the non-reversible baseline (experiment R-F9).
//
// Everything here is seeded through rrp::Rng: the same (seed, frames, mix)
// always yields the same plan, and a campaign's CSV is byte-identical for
// any RRP_THREADS.  Ambient RNG stays banned in this file by rrp_lint
// (src/sim/faults.* is deliberately NOT on the determinism-random
// whitelist — randomness only via the seeded util/rng.h API).
#pragma once

#include <iosfwd>
#include <optional>

#include "core/baselines.h"
#include "core/integrity.h"
#include "core/reversible_pruner.h"
#include "core/safety_monitor.h"
#include "sim/scenario.h"

namespace rrp::sim {

/// Every fault the campaign framework can schedule.  SensorBlackout is the
/// scheduled form of the legacy `RunConfig::sensor_blackout_prob` knob
/// (which remains as per-frame Bernoulli sugar over the same effect).
enum class FaultKind : int {
  SensorBlackout = 0,   ///< camera frame lost (empty road) for a burst
  WeightBitFlip = 1,    ///< SEU in a live network weight
  StoreBitFlip = 2,     ///< SEU in the golden WeightStore copy
  StuckCriticality = 3, ///< criticality sensor pinned at a fixed class
  StaleCriticality = 4, ///< criticality sensor repeats its last reading
  LatencySpike = 5,     ///< modeled inference latency multiplied for a burst
  DroppedDecision = 6,  ///< controller decision not applied this frame
  ArtifactReadFailure = 7,  ///< reload baseline: transient storage failures
};

constexpr int kFaultKinds = 8;

const char* fault_kind_name(FaultKind k);

/// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::SensorBlackout;
  std::int64_t frame = 0;    ///< first frame the fault is active
  int duration_frames = 1;   ///< burst length (blackout/stuck/stale/spike/drop)
  double magnitude = 4.0;    ///< LatencySpike: latency multiplier
  /// Bit flips: flat element selector, resolved modulo the target's total
  /// element count at injection time, and the bit to XOR (0..31).
  std::uint64_t target = 0;
  int bit = 30;
  core::CriticalityClass stuck = core::CriticalityClass::Low;
  int count = 1;  ///< ArtifactReadFailure: number of reads that fail
};

/// Relative frequency of each kind in a random plan (0 disables a kind).
struct FaultMix {
  double sensor_blackout = 0.5;
  double weight_bit_flip = 2.0;
  double store_bit_flip = 0.5;
  double stuck_criticality = 0.5;
  double stale_criticality = 0.5;
  double latency_spike = 1.0;
  double dropped_decision = 0.5;
  double artifact_read_failure = 0.5;

  std::vector<double> weights() const;
};

/// A reproducible schedule of faults, sorted by frame.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  void add(FaultEvent e);  ///< inserts keeping frame order

  /// Draws `n_faults` faults uniformly over [warmup, frames) with kinds
  /// distributed per `mix`.  Deterministic in every argument.
  static FaultPlan random_plan(std::uint64_t seed, int frames, int n_faults,
                               const FaultMix& mix = {}, int warmup = 10);
};

/// Where injected faults land.  All pointers are optional and non-owning;
/// events whose target is absent are skipped (and reported as skipped).
struct FaultTargets {
  nn::Network* live_net = nullptr;        ///< WeightBitFlip
  core::WeightStore* store = nullptr;     ///< StoreBitFlip
  core::ReloadProvider* reload = nullptr; ///< ArtifactReadFailure
};

/// The per-frame effect set the runner consumes.
struct FrameFaults {
  bool blackout = false;
  bool drop_decision = false;
  double latency_scale = 1.0;
  std::optional<core::CriticalityClass> stuck_criticality;
  bool stale_criticality = false;
};

/// One fault actually injected (bit flips resolved to a concrete target).
struct InjectedFault {
  std::size_t event_index = 0;
  FaultKind kind = FaultKind::SensorBlackout;
  std::int64_t frame = 0;
  std::string param;          ///< bit flips: parameter hit
  std::int64_t element = -1;  ///< bit flips: flat element index
  int bit = -1;
  bool applied = false;  ///< false when the arm has no such target
};

/// Walks a FaultPlan over the frame sequence, applying weight/store flips
/// and read-failure injections eagerly and exposing burst effects
/// (blackout, stuck sensor, latency spike, …) per frame.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, FaultTargets targets);

  /// Must be called once per frame, in order.  Applies point faults whose
  /// frame has arrived and returns the burst effects active at `frame`.
  FrameFaults begin_frame(std::int64_t frame);

  /// Everything injected so far, in schedule order.
  const std::vector<InjectedFault>& injected() const { return injected_; }

 private:
  void apply_point_fault(std::size_t idx, const FaultEvent& e);

  FaultPlan plan_;
  FaultTargets targets_;
  std::size_t next_ = 0;  ///< first event not yet applied/activated
  std::vector<InjectedFault> injected_;
  /// Active bursts: (end_frame_exclusive, event index).
  std::vector<std::pair<std::int64_t, std::size_t>> active_;
};

/// Integrity wiring for one closed-loop run under faults.  The reversible
/// arm supplies checker/levels (scrub + O(Δ) self-heal); the reload arm
/// supplies reload/reload_digests (digest check + full-artifact reload).
struct FaultHarness {
  FaultTargets targets;
  /// Reversible arm: scrub against golden ⊙ mask and self-heal.
  core::IntegrityChecker* checker = nullptr;
  const prune::PruneLevelLibrary* levels = nullptr;
  /// Fast-path arm only: the provider whose masked golden arm lags the
  /// active compacted level.  The runner calls sync_masked() right before
  /// each scrub so the golden ⊙ mask reference matches the active level —
  /// the O(Δ) walk rides the scrub cadence, never the frame path.
  core::CompactedLadderProvider* ladder = nullptr;
  /// Reload arm: expected per-level digests of a cleanly-loaded network;
  /// divergence of the active network triggers reload_current().
  core::ReloadProvider* reload = nullptr;
  const std::vector<std::uint64_t>* reload_digests = nullptr;

  /// Filled by the runner: every detection/recovery that happened.
  struct Recovery {
    std::int64_t frame = 0;
    std::string mechanism;        ///< "self-heal" or "reload"
    std::int64_t elements = 0;    ///< elements rewritten
    std::int64_t bytes = 0;       ///< bytes rewritten
    double modeled_latency_ms = 0.0;
    bool recovered = true;  ///< false: store corrupt, no local repair
  };
  std::vector<Recovery> recoveries;
  std::vector<InjectedFault> injected;  ///< copied from the injector
};

/// Digest of each level's cleanly-deserialized artifact network (the
/// reload arm's reference for divergence detection).
std::vector<std::uint64_t> reload_level_digests(core::ReloadProvider& reload);

/// Digest of a live network's parameters (params() order).
std::uint64_t live_network_digest(nn::Network& net);

// ---------------------------------------------------------------------------
// Campaign driver (experiment R-F9)
// ---------------------------------------------------------------------------

/// One provider arm of the campaign.
enum class CampaignArm : int { Reversible = 0, ReloadMemory = 1, ReloadDisk = 2 };

const char* campaign_arm_name(CampaignArm arm);

struct FaultCampaignConfig {
  std::uint64_t seed = 20240325;
  int frames = 600;
  int faults_per_run = 10;
  FaultMix mix;
  std::vector<std::string> suites = {"cut_in", "urban"};
  std::vector<CampaignArm> arms = {CampaignArm::Reversible,
                                   CampaignArm::ReloadMemory};
  std::string policy = "greedy";  ///< "greedy" or "fixed<K>"
  int hysteresis = 6;
  double deadline_ms = 12.0;
  int scrub_period_frames = 20;
  int watchdog_overrun_frames = 8;
  std::string artifact_dir = "cache/fault_artifacts";  ///< ReloadDisk arm
};

/// One per-fault outcome row of the campaign CSV.
struct FaultOutcome {
  std::string suite;
  std::string provider;
  std::string policy;
  std::uint64_t seed = 0;
  std::size_t fault_id = 0;
  FaultKind kind = FaultKind::SensorBlackout;
  std::int64_t inject_frame = 0;
  bool applied = false;
  std::int64_t detect_frame = -1;      ///< weight faults: first scrub hit
  std::int64_t detect_latency_frames = -1;
  std::string recovery_mechanism;      ///< "self-heal" / "reload" / ""
  std::int64_t recovery_elements = 0;
  std::int64_t recovery_bytes = 0;
  double recovery_modeled_ms = 0.0;
  bool healed = false;
  /// Run-level context repeated per row (for grouped analysis).
  std::int64_t run_safety_violations = 0;
  std::int64_t run_watchdog_degrades = 0;
  double run_accuracy = 0.0;
};

struct FaultCampaignSummary {
  std::int64_t weight_faults_injected = 0;
  std::int64_t weight_faults_detected = 0;
  std::int64_t weight_faults_healed = 0;
  double mean_detect_latency_frames = 0.0;
  double mean_recovery_ms = 0.0;
  double mean_recovery_bytes = 0.0;
};

struct FaultCampaignResult {
  std::vector<FaultOutcome> outcomes;
  /// Per-arm aggregates keyed by provider name, deterministic order.
  std::vector<std::pair<std::string, FaultCampaignSummary>> summaries;
};

/// Everything the campaign needs about one provisioned model.  The network
/// is mutated during runs (faults!) but restored between arms.
struct CampaignInputs {
  nn::Network* net = nullptr;
  const prune::PruneLevelLibrary* levels = nullptr;
  std::vector<core::BnState> bn_states;  ///< optional switchable BN
  core::SafetyConfig certified;
};

/// Runs the full campaign: suites × arms, one seeded FaultPlan per suite
/// (identical across arms, so recovery numbers are paired).  Deterministic:
/// same config ⇒ byte-identical CSV for any RRP_THREADS.
FaultCampaignResult run_fault_campaign(const CampaignInputs& inputs,
                                       const FaultCampaignConfig& config);

/// Emits one CSV row per FaultOutcome (with header).
void write_campaign_csv(const FaultCampaignResult& result, std::ostream& out);

}  // namespace rrp::sim
