#include "sim/platform_model.h"

#include "util/checks.h"

namespace rrp::sim {

PlatformModel::PlatformModel(PlatformConfig config) : config_(config) {
  RRP_CHECK(config_.macs_per_us > 0.0);
  RRP_CHECK(config_.infer_overhead_us >= 0.0);
  RRP_CHECK(config_.energy_per_mac_nj >= 0.0);
  RRP_CHECK(config_.static_power_mw >= 0.0);
  RRP_CHECK(config_.mem_bw_bytes_per_us > 0.0);
}

double PlatformModel::latency_ms(std::int64_t macs) const {
  RRP_CHECK(macs >= 0);
  const double us =
      config_.infer_overhead_us + static_cast<double>(macs) / config_.macs_per_us;
  return us * 1e-3;
}

double PlatformModel::energy_mj(std::int64_t macs) const {
  const double dynamic_mj =
      static_cast<double>(macs) * config_.energy_per_mac_nj * 1e-6;
  const double static_mj = config_.static_power_mw * latency_ms(macs) * 1e-3;
  return dynamic_mj + static_mj;
}

double PlatformModel::switch_latency_us(std::int64_t bytes) const {
  RRP_CHECK(bytes >= 0);
  return config_.switch_overhead_us +
         static_cast<double>(bytes) / config_.mem_bw_bytes_per_us;
}

double PlatformModel::switch_energy_mj(std::int64_t bytes) const {
  return config_.static_power_mw * switch_latency_us(bytes) * 1e-6;
}

}  // namespace rrp::sim
