// perception_criticality.h — criticality derived from the perception
// output itself.
//
// The TTC criticality in criticality.h models an INDEPENDENT ranging
// channel (radar-like).  A cheaper system might gate its own pruning from
// the camera classifier alone: any detected actor raises criticality,
// confident persistent detections raise it further.  That closes a
// feedback loop with a known hazard — a pruned network that MISSES the
// actor also fails to raise the criticality that would have restored it
// (self-triggering).  Experiment R-T5 quantifies the hazard and the
// conservative-floor mitigation.
//
// Without range information the estimator never reports Critical: that
// honesty is part of the argument for the independent channel.
#pragma once

#include "core/safety_monitor.h"
#include "nn/tensor.h"

namespace rrp::sim {

class PerceptionCriticality {
 public:
  struct Config {
    /// Softmax confidence above which a detection counts as "confident".
    double high_confidence = 0.8;
    /// Confident consecutive detections needed before reporting High.
    int confirm_frames = 2;
    /// Frames a lost track keeps its last class before decaying.
    int hold_frames = 3;
  };

  PerceptionCriticality();  // default configuration
  explicit PerceptionCriticality(Config config);

  /// Feeds one frame's prediction (argmax label over kNumClasses, with the
  /// raw logits row for confidence) and returns the updated criticality.
  core::CriticalityClass update(int predicted_label,
                                const nn::Tensor& logits_row);

  core::CriticalityClass current() const { return current_; }
  void reset();

 private:
  Config config_;
  core::CriticalityClass current_ = core::CriticalityClass::Low;
  int confident_streak_ = 0;
  int hold_left_ = 0;
};

}  // namespace rrp::sim
