// frame_engine.h — the reusable per-stream frame loop.
//
// Extracted from sim/runner so the closed perception-control loop can be
// driven one frame at a time by more than one client: the single-scenario
// simulator (run_scenario, which remains byte-identical to its pre-split
// behaviour — pinned by the golden-trace and observability-parity suites)
// and the multi-stream serving engine (src/serve), which interleaves many
// StreamStates over one shared provider.
//
// Split of responsibilities:
//   - StreamState carries ALL mutable per-stream loop state: sensor-noise
//     RNG, energy budget, perception estimator, fault-injector cursor,
//     watchdog overrun count, carried switch cost, flight-recorder/SLO
//     deltas, and the accumulating RunResult.  It is self-contained and
//     movable, so a serving engine can hold an arbitrary, changing set of
//     them.
//   - FrameEngine holds the immutable per-stream configuration (RunConfig
//     copy, platform model, input shape, cached metric handles) and steps
//     a StreamState by exactly one frame.
//
// step() preserves the historical runner frame order exactly: span open,
// fault begin_frame, sensed criticality, control, render, infer, account,
// scrub, record, metrics, watchdog, flight-recorder/SLO — in that order.
#pragma once

#include "sim/runner.h"
#include "util/metrics.h"

namespace rrp::sim {

/// All mutable state of one stream's closed loop.  Constructed by
/// FrameEngine::make_stream; advanced by FrameEngine::step.
struct StreamState {
  StreamState(const Scenario& scenario_in,
              core::RuntimeController& controller_in, FaultHarness* harness_in,
              const RunConfig& config);

  const Scenario* scenario = nullptr;
  core::RuntimeController* controller = nullptr;
  FaultHarness* harness = nullptr;

  Rng noise;
  double energy_left = 0.0;
  PerceptionCriticality estimator;
  core::CriticalityClass perceived = core::CriticalityClass::Low;
  FaultInjector injector;
  core::CriticalityClass last_published = core::CriticalityClass::Low;
  int consecutive_overruns = 0;
  // Watchdog interventions fire AFTER a frame is accounted; their switch
  // cost lands on the next frame's record.
  double carried_switch_us = 0.0;
  double carried_switch_energy = 0.0;
  // Black-box / SLO bookkeeping: per-frame deltas of the monitor's
  // assurance counts, and detection-latency credit for injected flips.
  std::int64_t prev_detects = 0;
  std::int64_t prev_repairs = 0;
  std::int64_t prev_degrades = 0;
  std::size_t credit_idx = 0;

  std::size_t frame = 0;  ///< next frame to execute
  RunResult result;

  bool done() const { return frame >= scenario->scenes.size(); }
};

/// Steps StreamStates through the closed loop, one frame per call.  The
/// engine itself is immutable after construction, so one engine may step
/// many streams (or the same stream from different ticks) — every mutable
/// bit lives in the StreamState.
class FrameEngine {
 public:
  /// `stream_domain` (optional) labels this engine's per-stream serve
  /// metrics (serve.stream.frames) — the serve engine passes the
  /// stream's MetricDomain, whose names it pre-registered on the driving
  /// thread; the solo simulator passes nothing and stays label-free.
  /// The domain is only read during construction (handles are cached).
  explicit FrameEngine(const RunConfig& config,
                       const metrics::MetricDomain* stream_domain = nullptr);

  /// Validates the scenario and builds a fresh stream over it.
  StreamState make_stream(const Scenario& scenario,
                          core::RuntimeController& controller,
                          FaultHarness* harness = nullptr) const;

  /// Advances `s` by exactly one frame.  Precondition: !s.done().
  void step(StreamState& s) const;

  /// Finalizes the stream: copies injected faults to the harness and
  /// summarizes telemetry.  Moves the result out of `s`.
  RunResult finish(StreamState& s) const;

  const RunConfig& config() const { return config_; }
  const PlatformModel& platform() const { return platform_; }

 private:
  void credit_detect_latency(StreamState& s, std::int64_t at_frame) const;

  RunConfig config_;
  PlatformModel platform_;
  nn::Shape in_shape_;
  // Metric handles resolved once on the constructing thread.  All names
  // are pre-registered in the registry's built-in schema, so the handles
  // are the same objects for every engine and safe to hit from pool
  // chunk bodies (counters/histograms are commutative atomics; the gauge
  // write is suppressed inside parallel regions).
  metrics::Counter* frames_ctr_;
  metrics::Counter* misses_ctr_;
  metrics::Gauge* budget_gauge_;
  metrics::Histogram* frame_hist_;
  metrics::Histogram* switch_hist_;
  metrics::Histogram* detect_hist_;
  /// Labeled per-stream counter (serve only); nullptr when unlabeled.
  metrics::Counter* stream_frames_ctr_ = nullptr;
};

}  // namespace rrp::sim
