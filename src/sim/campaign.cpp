#include "sim/campaign.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>

#include "core/controller.h"
#include "core/integrity.h"
#include "core/policies.h"
#include "core/reversible_pruner.h"
#include "sim/runner.h"
#include "util/checks.h"
#include "util/thread_pool.h"

namespace rrp::sim {

namespace {

constexpr std::uint64_t kCellSeedStride = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kNoiseSeedSalt = 0x5DEECE66Dull;
constexpr std::uint64_t kFaultSeedSalt = 0xA5C152EDB7E15133ull;

QuantileSketch::Config sketch_config(double gamma) {
  QuantileSketch::Config cfg;
  cfg.gamma = gamma;
  return cfg;
}

/// Same vocabulary as the blackbox replayer: "greedy" or "fixed<K>".
std::unique_ptr<core::Policy> cell_policy(const std::string& name,
                                          const core::SafetyConfig& certified,
                                          int hysteresis, int level_count) {
  if (name.rfind("fixed", 0) == 0) {
    int level = 0;
    for (std::size_t i = 5; i < name.size(); ++i) {
      RRP_CHECK_MSG(name[i] >= '0' && name[i] <= '9',
                    "bad fixed policy spec '" << name << "'");
      level = level * 10 + (name[i] - '0');
    }
    RRP_CHECK_MSG(level < level_count,
                  "fixed policy level " << level << " outside ladder");
    return std::make_unique<core::FixedPolicy>(level);
  }
  RRP_CHECK_MSG(name == "greedy",
                "unknown campaign policy '" << name << "' (greedy|fixed<K>)");
  return std::make_unique<core::CriticalityGreedyPolicy>(certified, hysteresis,
                                                         level_count);
}

bool valid_policy_name(const std::string& name) {
  if (name == "greedy") return true;
  if (name.rfind("fixed", 0) != 0 || name.size() == 5) return false;
  for (std::size_t i = 5; i < name.size(); ++i)
    if (name[i] < '0' || name[i] > '9') return false;
  return true;
}

/// Fixed-size per-cell result: everything the fold consumes.  Vectors are
/// bounded by faults_per_cell; the slack sketch is O(1).
struct CellResult {
  CampaignWorstCell worst;  ///< identity + severity components
  std::int64_t frames = 0;
  std::int64_t critical_frames = 0;
  std::int64_t missed_critical = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t safety_violations = 0;
  std::int64_t true_safety_violations = 0;
  std::int64_t vetoes = 0;
  std::int64_t level_switches = 0;
  std::int64_t watchdog_degrades = 0;
  std::int64_t faults_injected = 0;
  std::int64_t faults_detected = 0;
  std::int64_t faults_healed = 0;
  double missed_critical_rate = 0.0;
  std::vector<double> detect_latencies;  ///< frames, per detected fault
  std::vector<double> recoveries_ms;     ///< modeled repair latency
  QuantileSketch slack;                  ///< per-frame deadline slack (ms)
};

CellResult run_cell(const CampaignSpec& spec, const CampaignInputs& inputs,
                    std::int64_t index) {
  const CampaignCell cell = campaign_cell(spec, index);
  const std::int64_t per_scenario =
      static_cast<std::int64_t>(spec.policies.size()) * spec.replicates;
  const ScenarioSpec& scenario_spec =
      spec.scenarios[static_cast<std::size_t>(index / per_scenario)];

  // Faults corrupt weights (and possibly the golden store): every cell
  // works on a private clone, so in-flight cells never share state and the
  // caller's network is untouched.
  nn::Network net = inputs.net->clone();
  core::ReversiblePruner rp(net, *inputs.levels);
  if (!inputs.bn_states.empty()) rp.set_bn_states(inputs.bn_states);
  core::IntegrityChecker checker(rp.store());

  std::unique_ptr<core::Policy> policy = cell_policy(
      cell.policy, inputs.certified, spec.hysteresis, rp.level_count());
  core::SafetyMonitor monitor(inputs.certified);
  core::RuntimeController controller(*policy, rp, &monitor);

  FaultHarness harness;
  harness.targets.live_net = &rp.network();
  harness.targets.store = &rp.mutable_store();
  harness.checker = &checker;
  harness.levels = inputs.levels;

  RunConfig rc;
  rc.deadline_ms = spec.deadline_ms;
  rc.sensing_delay_frames = spec.sensing_delay_frames;
  rc.scrub_period_frames = spec.scrub_period_frames;
  rc.watchdog_overrun_frames = spec.watchdog_overrun_frames;
  rc.noise_seed = cell.noise_seed;
  if (spec.faults_per_cell > 0)
    rc.faults = FaultPlan::random_plan(cell.fault_seed, spec.frames,
                                       spec.faults_per_cell, spec.mix);

  const Scenario scenario =
      generate_scenario(scenario_spec, spec.frames, cell.scenario_seed);
  const RunResult run = run_scenario(scenario, controller, rc, &harness);

  CellResult res;
  res.slack = QuantileSketch(sketch_config(spec.sketch_gamma));
  res.worst.cell = cell;
  res.frames = run.summary.frames;
  res.safety_violations = run.summary.safety_violations;
  res.true_safety_violations = run.summary.true_safety_violations;
  res.vetoes = run.summary.vetoes;
  res.level_switches = run.summary.level_switches;
  res.watchdog_degrades = monitor.watchdog_degrade_count();

  double min_slack = spec.deadline_ms;
  for (const core::FrameRecord& r : run.telemetry.records()) {
    const double slack = r.deadline_ms - (r.latency_ms + r.switch_us * 1e-3);
    res.slack.add(slack);
    if (slack < min_slack) min_slack = slack;
    if (r.latency_ms + r.switch_us * 1e-3 > r.deadline_ms)
      ++res.deadline_misses;
    if (r.criticality >= core::CriticalityClass::High) {
      ++res.critical_frames;
      if (!r.correct) ++res.missed_critical;
    }
  }
  res.missed_critical_rate =
      res.critical_frames > 0
          ? static_cast<double>(res.missed_critical) / res.critical_frames
          : 0.0;

  // Detection latency / time-to-recovery: pair each recovery event with
  // the earliest not-yet-detected applied weight fault injected at or
  // before it (a scrub detects every divergence accumulated since the
  // previous scrub, so one recovery may consume several injections).
  std::vector<std::int64_t> pending;
  for (const InjectedFault& f : harness.injected) {
    if ((f.kind == FaultKind::WeightBitFlip ||
         f.kind == FaultKind::StoreBitFlip) &&
        f.applied) {
      ++res.faults_injected;
      pending.push_back(f.frame);
    }
  }
  std::size_t next = 0;
  for (const FaultHarness::Recovery& r : harness.recoveries) {
    while (next < pending.size() && pending[next] <= r.frame) {
      res.detect_latencies.push_back(
          static_cast<double>(r.frame - pending[next]));
      ++res.faults_detected;
      ++next;
    }
    res.recoveries_ms.push_back(r.modeled_latency_ms);
    if (r.recovered) ++res.faults_healed;
  }

  res.worst.missed_critical = res.missed_critical;
  res.worst.true_violations = res.true_safety_violations;
  res.worst.watchdog_degrades = res.watchdog_degrades;
  res.worst.deadline_misses = res.deadline_misses;
  res.worst.min_slack_ms = min_slack;
  return res;
}

void fold(CampaignAggregate& agg, CellResult& r, int worst_cells) {
  agg.cells += 1;
  agg.frames += r.frames;
  agg.critical_frames += r.critical_frames;
  agg.missed_critical_frames += r.missed_critical;
  agg.deadline_misses += r.deadline_misses;
  agg.safety_violations += r.safety_violations;
  agg.true_safety_violations += r.true_safety_violations;
  agg.vetoes += r.vetoes;
  agg.watchdog_degrades += r.watchdog_degrades;
  agg.level_switches += r.level_switches;
  agg.weight_faults_injected += r.faults_injected;
  agg.weight_faults_detected += r.faults_detected;
  agg.weight_faults_healed += r.faults_healed;
  agg.missed_critical_rate.add(r.missed_critical_rate);
  for (double v : r.detect_latencies) agg.detect_latency_frames.add(v);
  for (double v : r.recoveries_ms) agg.recovery_ms.add(v);
  agg.deadline_slack_ms.merge(r.slack);

  // Bounded worst-cell list, most severe first; comparator is total
  // (index tie-break), so the list is independent of fold batching.
  auto& worst = agg.worst;
  const auto pos = std::lower_bound(
      worst.begin(), worst.end(), r.worst,
      [](const CampaignWorstCell& a, const CampaignWorstCell& b) {
        return worse_cell(a, b);
      });
  if (pos != worst.end() ||
      worst.size() < static_cast<std::size_t>(worst_cells))
    worst.insert(pos, r.worst);
  if (worst.size() > static_cast<std::size_t>(worst_cells))
    worst.resize(static_cast<std::size_t>(worst_cells));
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

void write_sketch_line(std::ostream& out, const char* name,
                       const QuantileSketch& s) {
  out << name << " count=" << s.count();
  if (!s.empty()) {
    out << " min=" << fmt(s.min()) << " p50=" << fmt(s.quantile(0.5))
        << " p90=" << fmt(s.quantile(0.9)) << " p99=" << fmt(s.quantile(0.99))
        << " p99.9=" << fmt(s.quantile(0.999)) << " max=" << fmt(s.max());
  }
  out << "\n";
}

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::int64_t campaign_cell_count(const CampaignSpec& spec) {
  return static_cast<std::int64_t>(spec.scenarios.size()) *
         static_cast<std::int64_t>(spec.policies.size()) * spec.replicates;
}

CampaignCell campaign_cell(const CampaignSpec& spec, std::int64_t index) {
  RRP_CHECK(index >= 0 && index < campaign_cell_count(spec));
  const std::int64_t reps = spec.replicates;
  const std::int64_t per_scenario =
      static_cast<std::int64_t>(spec.policies.size()) * reps;
  CampaignCell cell;
  cell.index = index;
  cell.scenario = encode_scenario_spec(
      spec.scenarios[static_cast<std::size_t>(index / per_scenario)]);
  cell.policy =
      spec.policies[static_cast<std::size_t>((index % per_scenario) / reps)];
  const std::uint64_t base =
      spec.seed + kCellSeedStride * static_cast<std::uint64_t>(index + 1);
  cell.scenario_seed = base;
  cell.noise_seed = base ^ kNoiseSeedSalt;
  cell.fault_seed = base ^ kFaultSeedSalt;
  return cell;
}

bool worse_cell(const CampaignWorstCell& a, const CampaignWorstCell& b) {
  if (a.missed_critical != b.missed_critical)
    return a.missed_critical > b.missed_critical;
  if (a.true_violations != b.true_violations)
    return a.true_violations > b.true_violations;
  if (a.watchdog_degrades != b.watchdog_degrades)
    return a.watchdog_degrades > b.watchdog_degrades;
  if (a.deadline_misses != b.deadline_misses)
    return a.deadline_misses > b.deadline_misses;
  if (a.min_slack_ms != b.min_slack_ms) return a.min_slack_ms < b.min_slack_ms;
  return a.cell.index < b.cell.index;
}

CampaignSpec parse_campaign_spec(std::istream& in) {
  CampaignSpec spec;
  spec.policies.clear();
  std::string line;
  int lineno = 0;
  const auto fail = [&lineno](const std::string& msg) {
    throw SerializationError("campaign spec line " + std::to_string(lineno) +
                             ": " + msg);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t sp = line.find_first_of(" \t");
    const std::string key = line.substr(0, sp);
    const std::string value =
        sp == std::string::npos ? std::string() : trim(line.substr(sp + 1));
    if (value.empty()) fail("key '" + key + "' needs a value");
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value, nullptr, 0);
      } else if (key == "frames") {
        spec.frames = std::stoi(value);
      } else if (key == "replicates") {
        spec.replicates = std::stoi(value);
      } else if (key == "faults") {
        spec.faults_per_cell = std::stoi(value);
      } else if (key == "deadline_ms") {
        spec.deadline_ms = std::stod(value);
      } else if (key == "hysteresis") {
        spec.hysteresis = std::stoi(value);
      } else if (key == "scrub") {
        spec.scrub_period_frames = std::stoi(value);
      } else if (key == "watchdog") {
        spec.watchdog_overrun_frames = std::stoi(value);
      } else if (key == "sensing_delay") {
        spec.sensing_delay_frames = std::stoi(value);
      } else if (key == "gamma") {
        spec.sketch_gamma = std::stod(value);
      } else if (key == "worst") {
        spec.worst_cells = std::stoi(value);
      } else if (key == "block") {
        spec.block_cells = std::stoi(value);
      } else if (key == "policy") {
        if (!valid_policy_name(value))
          fail("bad policy '" + value + "' (greedy|fixed<K>)");
        spec.policies.push_back(value);
      } else if (key == "scenario") {
        if (value.find('=') == std::string::npos &&
            value.find('{') == std::string::npos) {
          if (!is_builtin_scenario(value))
            fail("unknown built-in scenario '" + value + "'");
          spec.scenarios.push_back(builtin_scenario_spec(value));
        } else {
          spec.scenarios.push_back(parse_scenario_spec(value));
        }
      } else {
        fail("unknown key '" + key + "'");
      }
    } catch (const SerializationError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad value '" + value + "' for key '" + key + "'");
    }
  }
  if (spec.scenarios.empty())
    throw SerializationError("campaign spec: needs at least one scenario");
  if (spec.policies.empty()) spec.policies = {"greedy"};
  if (spec.frames <= 0)
    throw SerializationError("campaign spec: frames must be positive");
  if (spec.replicates <= 0)
    throw SerializationError("campaign spec: replicates must be positive");
  if (spec.faults_per_cell < 0)
    throw SerializationError("campaign spec: faults must be >= 0");
  if (spec.worst_cells < 1)
    throw SerializationError("campaign spec: worst must be >= 1");
  return spec;
}

CampaignSpec load_campaign_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SerializationError("cannot open campaign spec: " + path);
  return parse_campaign_spec(in);
}

CampaignAggregate run_campaign(const CampaignSpec& spec,
                               const CampaignInputs& inputs) {
  RRP_CHECK_MSG(inputs.net != nullptr && inputs.levels != nullptr,
                "campaign needs a provisioned network and level library");
  RRP_CHECK(!spec.scenarios.empty() && !spec.policies.empty());
  RRP_CHECK(spec.frames > 0 && spec.replicates > 0);
  for (const ScenarioSpec& s : spec.scenarios)
    (void)encode_scenario_spec(s);  // validate up front
  for (const std::string& p : spec.policies)
    RRP_CHECK_MSG(valid_policy_name(p), "bad campaign policy '" << p << "'");

  const QuantileSketch::Config cfg = sketch_config(spec.sketch_gamma);
  CampaignAggregate agg;
  agg.missed_critical_rate = QuantileSketch(cfg);
  agg.detect_latency_frames = QuantileSketch(cfg);
  agg.recovery_ms = QuantileSketch(cfg);
  agg.deadline_slack_ms = QuantileSketch(cfg);

  const std::int64_t total = campaign_cell_count(spec);
  // Block size bounds cells in flight; it affects neither the per-cell
  // seeds nor the fold order, so aggregates are independent of it (and of
  // the thread count).
  const std::int64_t block = spec.block_cells > 0 ? spec.block_cells : 64;
  std::vector<CellResult> results;
  for (std::int64_t block_begin = 0; block_begin < total;
       block_begin += block) {
    const std::int64_t n = std::min(block, total - block_begin);
    // resize (not assign-from-temporary) value-initializes the new cells
    // in place; GCC 12's -Wmaybe-uninitialized misfires on the copied
    // temporary's string members under heavy inlining.
    results.clear();
    results.resize(static_cast<std::size_t>(n));
    parallel_for(0, n, 1, [&](std::int64_t chunk_begin,
                              std::int64_t chunk_end) {
      for (std::int64_t i = chunk_begin; i < chunk_end; ++i)
        results[static_cast<std::size_t>(i)] =
            run_cell(spec, inputs, block_begin + i);
    });
    // Fold on the calling thread in cell-index order.
    for (CellResult& r : results) fold(agg, r, spec.worst_cells);
    results.clear();
  }
  return agg;
}

void write_campaign_report(const CampaignSpec& spec,
                           const CampaignAggregate& agg, std::ostream& out) {
  out << "# rrp campaign report\n";
  out << "seed " << spec.seed << "\n";
  out << "cells " << agg.cells << " (scenarios " << spec.scenarios.size()
      << " x policies " << spec.policies.size() << " x replicates "
      << spec.replicates << ")\n";
  out << "frames_per_cell " << spec.frames << " faults_per_cell "
      << spec.faults_per_cell << " deadline_ms " << fmt(spec.deadline_ms)
      << " scrub " << spec.scrub_period_frames << " watchdog "
      << spec.watchdog_overrun_frames << "\n";
  out << "sketch_gamma " << fmt(spec.sketch_gamma) << "\n";
  out << "\n";
  out << "frames " << agg.frames << "\n";
  out << "critical_frames " << agg.critical_frames << "\n";
  out << "missed_critical_frames " << agg.missed_critical_frames << "\n";
  out << "deadline_misses " << agg.deadline_misses << "\n";
  out << "safety_violations " << agg.safety_violations
      << " true_safety_violations " << agg.true_safety_violations
      << " vetoes " << agg.vetoes << "\n";
  out << "watchdog_degrades " << agg.watchdog_degrades << "\n";
  out << "level_switches " << agg.level_switches << "\n";
  out << "weight_faults injected " << agg.weight_faults_injected
      << " detected " << agg.weight_faults_detected << " healed "
      << agg.weight_faults_healed << "\n";
  out << "\n";
  write_sketch_line(out, "missed_critical_rate", agg.missed_critical_rate);
  write_sketch_line(out, "detect_latency_frames", agg.detect_latency_frames);
  write_sketch_line(out, "recovery_ms", agg.recovery_ms);
  write_sketch_line(out, "deadline_slack_ms", agg.deadline_slack_ms);
  out << "\n";
  out << "worst_cells " << agg.worst.size() << "\n";
  for (std::size_t i = 0; i < agg.worst.size(); ++i) {
    const CampaignWorstCell& w = agg.worst[i];
    out << "worst[" << i << "] cell " << w.cell.index << " policy "
        << w.cell.policy << " missed_critical " << w.missed_critical
        << " true_violations " << w.true_violations << " watchdog "
        << w.watchdog_degrades << " deadline_misses " << w.deadline_misses
        << " min_slack_ms " << fmt(w.min_slack_ms) << "\n";
    out << "worst[" << i << "] seeds scenario " << w.cell.scenario_seed
        << " noise " << w.cell.noise_seed << " fault " << w.cell.fault_seed
        << "\n";
    out << "worst[" << i << "] scenario " << w.cell.scenario << "\n";
  }
}

BlackboxRunSpec blackbox_spec_for_cell(const CampaignSpec& spec,
                                       const CampaignCell& cell,
                                       const std::string& model) {
  BlackboxRunSpec b;
  b.model = model;
  b.suite = std::string(kDslSuitePrefix) + cell.scenario;
  b.policy = cell.policy;
  b.frames = spec.frames;
  b.scenario_seed = cell.scenario_seed;
  b.noise_seed = cell.noise_seed;
  b.deadline_ms = spec.deadline_ms;
  b.hysteresis = spec.hysteresis;
  b.scrub_period_frames = spec.scrub_period_frames;
  b.watchdog_overrun_frames = spec.watchdog_overrun_frames;
  b.sensing_delay_frames = spec.sensing_delay_frames;
  b.self_heal = true;
  if (spec.faults_per_cell > 0)
    b.faults = FaultPlan::random_plan(cell.fault_seed, spec.frames,
                                      spec.faults_per_cell, spec.mix);
  return b;
}

std::vector<FaultTailStats> fold_fault_outcomes(
    const FaultCampaignResult& result, double gamma) {
  const QuantileSketch::Config cfg = sketch_config(gamma);
  std::vector<FaultTailStats> out;
  for (const auto& [provider, summary] : result.summaries) {
    (void)summary;
    FaultTailStats s;
    s.provider = provider;
    s.detect_latency_frames = QuantileSketch(cfg);
    s.recovery_ms = QuantileSketch(cfg);
    s.recovery_bytes = QuantileSketch(cfg);
    out.push_back(std::move(s));
  }
  // Summaries are keyed by ARM name ("reversible"), while outcome rows
  // carry the provider's self-reported name ("reversible-masked"), so an
  // exact compare would silently drop the reversible arm's outcomes.
  // Exact match first, then arm-name-is-a-dashed-prefix of the provider.
  const auto find = [&out](const std::string& provider) -> FaultTailStats* {
    for (FaultTailStats& s : out)
      if (s.provider == provider) return &s;
    for (FaultTailStats& s : out)
      if (provider.rfind(s.provider + "-", 0) == 0) return &s;
    return nullptr;
  };
  for (const FaultOutcome& o : result.outcomes) {
    FaultTailStats* s = find(o.provider);
    if (s == nullptr) continue;
    const bool weight_fault = o.kind == FaultKind::WeightBitFlip ||
                              o.kind == FaultKind::StoreBitFlip;
    if (weight_fault && o.applied) {
      ++s->injected;
      if (o.detect_latency_frames >= 0) {
        ++s->detected;
        s->detect_latency_frames.add(
            static_cast<double>(o.detect_latency_frames));
      }
      if (o.healed) ++s->healed;
    }
    if (!o.recovery_mechanism.empty()) {
      s->recovery_ms.add(o.recovery_modeled_ms);
      s->recovery_bytes.add(static_cast<double>(o.recovery_bytes));
    }
  }
  return out;
}

void write_fault_tail_stats(const std::vector<FaultTailStats>& stats,
                            std::ostream& out) {
  out << "# streaming tail stats (mergeable quantile sketches)\n";
  for (const FaultTailStats& s : stats) {
    out << s.provider << ": weight faults injected=" << s.injected
        << " detected=" << s.detected << " healed=" << s.healed << "\n";
    write_sketch_line(out, "  detect_latency_frames",
                      s.detect_latency_frames);
    write_sketch_line(out, "  recovery_ms", s.recovery_ms);
    write_sketch_line(out, "  recovery_bytes", s.recovery_bytes);
  }
}

}  // namespace rrp::sim
