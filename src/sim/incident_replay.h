// incident_replay.h — record and deterministically replay incident bundles.
//
// The sim-layer counterpart of core/flight_recorder.h.  run_blackbox runs
// one closed loop with the flight recorder and SLO monitor armed and packs
// the resulting IncidentBundle; replay_bundle rebuilds the entire run from
// nothing but a bundle (suite + seeds + policy + fault schedule + SLO
// specs) and a provisioned model, re-runs it, and compares.  Because every
// layer underneath is deterministic (seeded Rng, modeled platform time,
// thread-count-invariant kernels and observability), a successful replay
// is byte-identical: the replayed bundle serializes to the same bytes as
// the recorded one, for any RRP_THREADS.
//
// This unit also owns the lossless conversion between sim::FaultEvent and
// the core-layer RecordedFault mirror (core cannot include sim headers —
// rrp_lint R3).
#pragma once

#include "core/flight_recorder.h"
#include "sim/faults.h"
#include "sim/runner.h"

namespace rrp::sim {

/// Lossless FaultEvent <-> RecordedFault conversion.
core::RecordedFault to_recorded_fault(const FaultEvent& e);
FaultEvent from_recorded_fault(const core::RecordedFault& r);
std::vector<core::RecordedFault> record_fault_plan(const FaultPlan& plan);
FaultPlan fault_plan_from_recorded(const std::vector<core::RecordedFault>& v);

/// Everything a black-box run needs beyond the provisioned model (which
/// CampaignInputs already describes).  All fields are serialized into the
/// bundle context, so a replay can reconstruct the spec verbatim.
struct BlackboxRunSpec {
  std::string model = "lenet";    ///< informational: provisioned model name
  std::string suite = "cut_in";   ///< scenario suite (sim/suites.h)
  std::string policy = "greedy";  ///< "greedy" or "fixed<K>"
  int frames = 600;
  std::uint64_t scenario_seed = 20240325;
  std::uint64_t noise_seed = 0x5DEECE66Dull;
  double deadline_ms = 12.0;
  int hysteresis = 6;
  int scrub_period_frames = 20;
  int watchdog_overrun_frames = 8;
  int sensing_delay_frames = 1;
  bool self_heal = true;
  bool trace_enabled = false;  ///< arm span tracing (span digests in records)
  std::size_t recorder_capacity = 256;
  FaultPlan faults;
  std::vector<core::SloSpec> slos;  ///< empty -> core::standard_slos()
};

/// Reconstructs the spec a bundle was recorded with.
BlackboxRunSpec spec_from_bundle(const core::IncidentBundle& bundle);

struct BlackboxRunResult {
  RunResult run;
  core::IncidentBundle bundle;
  bool incident = false;  ///< any SLO incident was raised during the run
};

/// Runs the closed loop (reversible provider + integrity scrubbing) with
/// the recorder and SLO monitor armed, and packs the incident bundle.
/// Owns the process observability state for the duration of the call:
/// metrics and trace are reset before AND after, and span tracing is
/// armed per `spec.trace_enabled` (previous state restored).  The
/// network in `inputs` is restored bit-exact on return (faults corrupt
/// it mid-run, as in the fault campaign).
BlackboxRunResult run_blackbox(const BlackboxRunSpec& spec,
                               const CampaignInputs& inputs);

struct ReplayResult {
  /// The headline verdict: the replayed bundle serializes to EXACTLY the
  /// recorded bundle's bytes.
  bool match = false;
  bool records_match = false;    ///< recorder-window CSVs byte-equal
  bool telemetry_match = false;  ///< full-run telemetry digests equal
  bool incidents_match = false;  ///< same incidents at the same frames
  std::string recorded_csv;      ///< window CSV from the bundle
  std::string replayed_csv;      ///< window CSV from the re-run
  std::uint64_t recorded_telemetry_digest = 0;
  std::uint64_t replayed_telemetry_digest = 0;
  core::RunSummary summary;  ///< summary of the re-run
};

/// Re-runs a bundle's recorded window from its seed/config against a
/// provisioned model and compares byte-for-byte.  The caller must supply
/// the SAME provisioned model the bundle was recorded with (the bundle
/// names it in context.model but cannot carry the weights).
ReplayResult replay_bundle(const core::IncidentBundle& bundle,
                           const CampaignInputs& inputs);

}  // namespace rrp::sim
