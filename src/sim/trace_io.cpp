#include "sim/trace_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/checks.h"
#include "util/csv.h"

namespace rrp::sim {

namespace {

constexpr const char* kHeader =
    "frame,time_s,ego_speed_mps,visibility,actor_type,distance_m,"
    "closing_mps,lateral_m";

std::string num(double v) { return CsvWriter::num(v, 6); }

ActorType actor_type_from(const std::string& name) {
  for (int t = 0; t < kActorTypes; ++t)
    if (name == actor_type_name(static_cast<ActorType>(t)))
      return static_cast<ActorType>(t);
  throw SerializationError("unknown actor type '" + name + "'");
}

}  // namespace

void write_scenario_csv(const Scenario& scenario, std::ostream& out) {
  out << "# scenario=" << scenario.name << " dt_s="
      << CsvWriter::num(scenario.dt_s, 9)
      << "\n"
      << kHeader << "\n";
  for (std::size_t f = 0; f < scenario.scenes.size(); ++f) {
    const Scene& s = scenario.scenes[f];
    const std::string prefix = std::to_string(f) + "," + num(s.time_s) + "," +
                               num(s.ego_speed_mps) + "," +
                               num(s.visibility) + ",";
    if (s.actors.empty()) {
      out << prefix << "none,0,0,0\n";
      continue;
    }
    for (const Actor& a : s.actors)
      out << prefix << actor_type_name(a.type) << "," << num(a.distance_m)
          << "," << num(a.closing_mps) << "," << num(a.lateral_m) << "\n";
  }
}

void save_scenario_csv(const Scenario& scenario, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw SerializationError("cannot open '" + path + "' for writing");
  write_scenario_csv(scenario, f);
  if (!f) throw SerializationError("write failed for '" + path + "'");
}

Scenario read_scenario_csv(std::istream& in) {
  Scenario sc;
  sc.dt_s = 1.0 / 30.0;

  std::string line;
  // Optional metadata comment.
  if (!std::getline(in, line)) throw SerializationError("empty trace");
  if (!line.empty() && line[0] == '#') {
    std::istringstream meta(line.substr(1));
    std::string token;
    while (meta >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "scenario") sc.name = value;
      else if (key == "dt_s") sc.dt_s = std::stod(value);
    }
    if (!std::getline(in, line)) throw SerializationError("missing header");
  }
  if (line != kHeader)
    throw SerializationError("unexpected trace header: " + line);

  std::map<std::size_t, Scene> frames;
  std::size_t max_frame = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // RFC-4180 parse: a naive split-on-comma silently mis-reads quoted
    // fields (e.g. a future actor label containing a comma).
    const auto fields = parse_csv_line(line);
    if (fields.size() != 8)
      throw SerializationError("trace row has " +
                               std::to_string(fields.size()) + " fields");
    std::size_t frame = 0;
    try {
      frame = static_cast<std::size_t>(std::stoull(fields[0]));
      Scene& s = frames[frame];
      s.time_s = std::stod(fields[1]);
      s.ego_speed_mps = std::stod(fields[2]);
      s.visibility = std::stod(fields[3]);
      if (fields[4] != "none") {
        Actor a;
        a.type = actor_type_from(fields[4]);
        a.distance_m = std::stod(fields[5]);
        a.closing_mps = std::stod(fields[6]);
        a.lateral_m = std::stod(fields[7]);
        s.actors.push_back(a);
      }
    } catch (const std::invalid_argument&) {
      throw SerializationError("malformed trace row: " + line);
    }
    max_frame = std::max(max_frame, frame);
  }
  if (frames.empty()) throw SerializationError("trace has no frames");
  if (frames.size() != max_frame + 1)
    throw SerializationError("trace has gaps in the frame sequence");

  sc.scenes.reserve(frames.size());
  for (std::size_t f = 0; f <= max_frame; ++f)
    sc.scenes.push_back(std::move(frames.at(f)));
  return sc;
}

Scenario load_scenario_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw SerializationError("cannot open '" + path + "' for reading");
  return read_scenario_csv(f);
}

}  // namespace rrp::sim
