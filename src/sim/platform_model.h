// platform_model.h — analytic embedded-platform latency/energy model.
//
// Substitution note (see DESIGN.md): stands in for Jetson-class hardware.
// Latency and energy are affine in executed MACs (plus weight-write
// traffic for level switches), which preserves the *shape* of every
// latency/energy-vs-pruning curve: structured pruning removes MACs
// identically on real silicon.  Defaults approximate a ~0.3 GMAC/s
// embedded CPU lane with DRAM at a few GB/s.
#pragma once

#include <cstdint>

namespace rrp::sim {

struct PlatformConfig {
  double macs_per_us = 300.0;        ///< effective MAC throughput
  double infer_overhead_us = 80.0;   ///< fixed per-inference cost
  double energy_per_mac_nj = 0.004;  ///< dynamic energy per MAC
  double static_power_mw = 350.0;    ///< platform power while busy
  double mem_bw_bytes_per_us = 3000.0;  ///< weight-write bandwidth
  double switch_overhead_us = 20.0;     ///< fixed cost of any level switch
};

class PlatformModel {
 public:
  explicit PlatformModel(PlatformConfig config = {});

  const PlatformConfig& config() const { return config_; }

  /// Batch-1 inference latency for the given executed MAC count.
  double latency_ms(std::int64_t macs) const;

  /// Batch-1 inference energy (dynamic + static over the latency).
  double energy_mj(std::int64_t macs) const;

  /// Latency of a level switch that rewrites `bytes` of weights
  /// (0 bytes — e.g. a compact-mode pointer swap — still pays the fixed
  /// switch overhead when a switch actually happens).
  double switch_latency_us(std::int64_t bytes) const;

  /// Energy of that switch (memory traffic at static power).
  double switch_energy_mj(std::int64_t bytes) const;

 private:
  PlatformConfig config_;
};

}  // namespace rrp::sim
