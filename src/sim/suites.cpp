#include "sim/suites.h"

#include <algorithm>
#include <cmath>

#include "util/checks.h"

namespace rrp::sim {

namespace {

constexpr double kDt = 1.0 / 30.0;

ActorType random_vulnerable(Rng& rng) {
  return rng.bernoulli(0.6) ? ActorType::Pedestrian : ActorType::Cyclist;
}

Scenario start(const std::string& name, int frames) {
  RRP_CHECK(frames > 0);
  Scenario sc;
  sc.name = name;
  sc.dt_s = kDt;
  sc.scenes.reserve(static_cast<std::size_t>(frames));
  return sc;
}

}  // namespace

Scenario make_highway(int frames, std::uint64_t seed) {
  Scenario sc = start("highway", frames);
  Rng rng(seed);
  Scene s;
  s.ego_speed_mps = 30.0;
  s.visibility = rng.uniform(0.85, 1.0);

  // A persistent lead vehicle that mostly keeps its gap.
  Actor lead;
  lead.type = ActorType::Vehicle;
  lead.distance_m = rng.uniform(45.0, 65.0);
  lead.closing_mps = rng.uniform(-0.5, 0.5);
  s.actors.push_back(lead);

  int braking_frames_left = 0;
  for (int f = 0; f < frames; ++f) {
    s.time_s = f * kDt;
    Actor& l = s.actors.front();

    if (braking_frames_left > 0) {
      --braking_frames_left;
      if (l.distance_m < 14.0 || braking_frames_left == 0) {
        // Event resolves: lead accelerates away again.
        l.closing_mps = rng.uniform(-4.0, -2.0);
        braking_frames_left = 0;
      }
    } else {
      // Mild gap jitter; rare hard-braking event.
      l.closing_mps += rng.normal(0.0, 0.15);
      l.closing_mps = std::clamp(l.closing_mps, -2.0, 2.0);
      if (rng.bernoulli(0.004)) {
        l.closing_mps = rng.uniform(7.0, 11.0);
        braking_frames_left = rng.uniform_int(45, 120);
      }
    }
    // Keep the lead within sensor range.
    if (l.distance_m > 75.0) l.closing_mps = std::max(l.closing_mps, 0.5);
    if (l.distance_m < 8.0) l.closing_mps = std::min(l.closing_mps, -1.0);

    // Occasional road debris far ahead.
    if (s.actors.size() == 1 && rng.bernoulli(0.002)) {
      Actor debris;
      debris.type = ActorType::Obstacle;
      debris.distance_m = rng.uniform(40.0, 60.0);
      debris.closing_mps = s.ego_speed_mps * 0.4;  // closes as ego drives
      debris.lateral_m = rng.uniform(-1.0, 1.0);
      s.actors.push_back(debris);
    }

    sc.scenes.push_back(s);
    step_actors(s, kDt);
    if (s.actors.empty() || s.actors.front().type != ActorType::Vehicle) {
      // The lead got consumed by step_actors (passed behind); respawn it.
      Actor fresh;
      fresh.type = ActorType::Vehicle;
      fresh.distance_m = rng.uniform(45.0, 65.0);
      fresh.closing_mps = rng.uniform(-0.5, 0.5);
      s.actors.insert(s.actors.begin(), fresh);
    }
  }
  return sc;
}

Scenario make_urban(int frames, std::uint64_t seed) {
  Scenario sc = start("urban", frames);
  Rng rng(seed);
  Scene s;
  s.ego_speed_mps = 12.0;
  s.visibility = rng.uniform(0.8, 1.0);

  for (int f = 0; f < frames; ++f) {
    s.time_s = f * kDt;

    // Spawn vulnerable road users and parked/crossing vehicles.
    if (s.actors.size() < 3 && rng.bernoulli(0.03)) {
      Actor a;
      const double roll = rng.uniform();
      if (roll < 0.55) a.type = random_vulnerable(rng);
      else if (roll < 0.85) a.type = ActorType::Vehicle;
      else a.type = ActorType::Obstacle;
      a.distance_m = rng.uniform(18.0, 40.0);
      a.lateral_m = rng.uniform(-3.0, 3.0);
      a.closing_mps = rng.uniform(2.0, 7.0);
      s.actors.push_back(a);
    }
    // Pedestrians drift laterally (may enter/leave the corridor).
    for (Actor& a : s.actors) {
      if (a.type == ActorType::Pedestrian || a.type == ActorType::Cyclist)
        a.lateral_m += rng.normal(0.0, 0.08);
      // Some actors brake/slow before reaching the ego.
      if (a.distance_m < 6.0 && rng.bernoulli(0.3))
        a.closing_mps = std::min(a.closing_mps, 1.0);
    }

    sc.scenes.push_back(s);
    step_actors(s, kDt);
  }
  return sc;
}

Scenario make_cut_in(int frames, std::uint64_t seed) {
  Scenario sc = start("cut_in", frames);
  Rng rng(seed);
  Scene s;
  s.ego_speed_mps = 25.0;
  s.visibility = rng.uniform(0.85, 1.0);

  // Calm background lead.
  Actor lead;
  lead.type = ActorType::Vehicle;
  lead.distance_m = 60.0;
  lead.closing_mps = 0.0;
  s.actors.push_back(lead);

  const int period = std::max(180, frames / 4);
  for (int f = 0; f < frames; ++f) {
    s.time_s = f * kDt;

    // Scripted cut-in: a vehicle swerves into the lane at mid distance
    // with a high closing speed — critical TTC while still visually small,
    // exactly where pruned perception fails first.
    if (f > 0 && f % period == period / 2) {
      Actor cut;
      cut.type = ActorType::Vehicle;
      cut.distance_m = rng.uniform(18.0, 30.0);
      cut.closing_mps = rng.uniform(8.0, 14.0);
      cut.lateral_m = rng.uniform(-0.8, 0.8);
      s.actors.push_back(cut);
    }
    // Cut-in resolves once close: it accelerates away.
    for (Actor& a : s.actors)
      if (a.distance_m < 8.0 && a.closing_mps > 0.0)
        a.closing_mps = rng.uniform(-6.0, -4.0);

    sc.scenes.push_back(s);
    step_actors(s, kDt);
    // Drop resolved cut-ins that opened beyond sensor interest.
    s.actors.erase(std::remove_if(s.actors.begin(), s.actors.end(),
                                  [](const Actor& a) {
                                    return a.distance_m > 90.0;
                                  }),
                   s.actors.end());
    if (s.actors.empty()) {
      Actor fresh = lead;
      fresh.distance_m = 60.0;
      s.actors.push_back(fresh);
    }
  }
  return sc;
}

Scenario make_degraded(int frames, std::uint64_t seed) {
  Scenario sc = make_urban(frames, seed ^ 0xDE6BADEDull);
  sc.name = "degraded";
  Rng rng(seed + 17);
  // Overlay visibility drops (fog banks / glare windows).
  int window_left = 0;
  double window_vis = 1.0;
  for (Scene& s : sc.scenes) {
    if (window_left == 0 && rng.bernoulli(0.01)) {
      window_left = rng.uniform_int(90, 240);
      window_vis = rng.uniform(0.55, 0.7);
    }
    if (window_left > 0) {
      --window_left;
      s.visibility = window_vis;
    }
  }
  return sc;
}

Scenario make_intersection(int frames, std::uint64_t seed) {
  Scenario sc = start("intersection", frames);
  Rng rng(seed);

  // Walkers are simulated here (lateral motion) and projected into the
  // scene each frame; step_actors is not used for them.
  struct Walker {
    Actor actor;
    double lateral_mps;
  };
  std::vector<Walker> walkers;

  Scene base;
  base.ego_speed_mps = 8.0;  // creeping toward the junction
  base.visibility = rng.uniform(0.8, 1.0);

  for (int f = 0; f < frames; ++f) {
    if (walkers.size() < 2 && rng.bernoulli(0.02)) {
      Walker w;
      w.actor.type = random_vulnerable(rng);
      w.actor.distance_m = rng.uniform(6.0, 18.0);
      const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
      w.actor.lateral_m = side * rng.uniform(3.0, 4.5);
      w.actor.closing_mps = rng.uniform(-0.5, 0.5);
      w.lateral_mps = -side * rng.uniform(1.0, 2.0);
      walkers.push_back(w);
    }

    Scene s = base;
    s.time_s = f * kDt;
    for (const Walker& w : walkers) s.actors.push_back(w.actor);
    sc.scenes.push_back(std::move(s));

    for (Walker& w : walkers) {
      w.actor.lateral_m += w.lateral_mps * kDt;
      w.actor.distance_m -= w.actor.closing_mps * kDt;
    }
    walkers.erase(std::remove_if(walkers.begin(), walkers.end(),
                                 [](const Walker& w) {
                                   return std::fabs(w.actor.lateral_m) > 5.0 ||
                                          w.actor.distance_m <= 0.5;
                                 }),
                  walkers.end());
  }
  return sc;
}

std::vector<Scenario> standard_suites(int frames, std::uint64_t base_seed) {
  return {make_highway(frames, base_seed + 1),
          make_urban(frames, base_seed + 2),
          make_cut_in(frames, base_seed + 3),
          make_degraded(frames, base_seed + 4),
          make_intersection(frames, base_seed + 5)};
}

}  // namespace rrp::sim
