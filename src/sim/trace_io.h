// trace_io.h — scenario record/replay.
//
// Scenarios are serialized to a simple CSV (one row per actor per frame,
// plus per-frame ego rows), so users can (a) archive the exact traffic a
// result was produced on, and (b) bring their OWN traces — e.g. converted
// from a drive log — and run them through the closed loop unchanged.
// Round-trip is exact up to decimal formatting (property-tested).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/scenario.h"

namespace rrp::sim {

/// Writes a scenario as CSV:
///   frame,time_s,ego_speed_mps,visibility,actor_type,distance_m,
///   closing_mps,lateral_m
/// Frames without actors emit a single row with actor_type "none".
void write_scenario_csv(const Scenario& scenario, std::ostream& out);
void save_scenario_csv(const Scenario& scenario, const std::string& path);

/// Parses write_scenario_csv output back into a Scenario.
/// Throws rrp::SerializationError on malformed input.
Scenario read_scenario_csv(std::istream& in);
Scenario load_scenario_csv(const std::string& path);

}  // namespace rrp::sim
