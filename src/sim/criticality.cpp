#include "sim/criticality.h"

#include <cmath>
#include <limits>

namespace rrp::sim {

using core::CriticalityClass;

double scene_min_ttc_s(const Scene& scene) {
  double best = std::numeric_limits<double>::infinity();
  for (const Actor& a : scene.actors) {
    if (std::fabs(a.lateral_m) > kCorridorHalfWidth_m) continue;
    if (a.closing_mps <= 0.0) continue;  // opening gap, no collision course
    best = std::min(best, a.distance_m / a.closing_mps);
  }
  return best;
}

CriticalityClass classify_scene(const Scene& scene,
                                const CriticalityConfig& config) {
  const double ttc = scene_min_ttc_s(scene);
  CriticalityClass by_ttc = CriticalityClass::Low;
  if (ttc <= config.ttc_critical_s) by_ttc = CriticalityClass::Critical;
  else if (ttc <= config.ttc_high_s) by_ttc = CriticalityClass::High;
  else if (ttc <= config.ttc_medium_s) by_ttc = CriticalityClass::Medium;

  // Proximity floor: something close in the corridor is never "Low".
  CriticalityClass by_proximity = CriticalityClass::Low;
  const Actor* dom = scene.dominant();
  if (dom != nullptr) {
    if (dom->distance_m <= config.proximity_high_m)
      by_proximity = CriticalityClass::High;
    else if (dom->distance_m <= config.proximity_medium_m)
      by_proximity = CriticalityClass::Medium;
  }
  return std::max(by_ttc, by_proximity);
}

std::vector<CriticalityClass> criticality_trace(
    const Scenario& scenario, const CriticalityConfig& config) {
  std::vector<CriticalityClass> out;
  out.reserve(scenario.scenes.size());
  for (const Scene& s : scenario.scenes)
    out.push_back(classify_scene(s, config));
  return out;
}

}  // namespace rrp::sim
