#include "sim/vision_task.h"

#include <algorithm>
#include <cmath>

#include "util/checks.h"

namespace rrp::sim {

int scene_label(const Scene& scene) {
  const Actor* dom = scene.dominant();
  return dom == nullptr ? kClearLabel : static_cast<int>(dom->type);
}

nn::Shape input_shape(const VisionTaskConfig& config) {
  return {1, 1, config.height, config.width};
}

namespace {

/// Apparent half-size (pixels) of an actor at the given distance.
int apparent_half_size(double distance_m, int height) {
  const double s = static_cast<double>(height) * 0.45 / (1.0 + distance_m / 9.0);
  return std::clamp(static_cast<int>(std::lround(s)), 1, height / 2 - 1);
}

/// Contrast of the stencil against the road background.  The decay
/// constant is deliberately short (25 m): mid-distance hazards are the
/// hard cases where pruning costs accuracy first.
float apparent_contrast(double distance_m, double visibility) {
  const double c = 1.2 * visibility / (1.0 + distance_m / 32.0);
  return static_cast<float>(std::clamp(c, 0.2, 1.2));
}

void put(nn::Tensor& img, int r, int c, float v, int h, int w) {
  if (r < 0 || r >= h || c < 0 || c >= w) return;
  img[static_cast<std::int64_t>(r) * w + c] += v;
}

/// Draws a class-specific stencil centered at (cr, cc) with half-size hs.
void draw_stencil(nn::Tensor& img, ActorType type, int cr, int cc, int hs,
                  float contrast, int h, int w) {
  switch (type) {
    case ActorType::Vehicle:
      // Wide filled box (car silhouette).
      for (int r = -hs / 2 - 1; r <= hs / 2 + 1; ++r)
        for (int c = -hs; c <= hs; ++c)
          put(img, cr + r, cc + c, contrast, h, w);
      break;
    case ActorType::Pedestrian:
      // Tall thin bar with a head dot.
      for (int r = -hs; r <= hs; ++r)
        put(img, cr + r, cc, contrast, h, w);
      put(img, cr - hs - 1, cc, contrast, h, w);
      put(img, cr - hs, cc - 1, contrast * 0.6f, h, w);
      put(img, cr - hs, cc + 1, contrast * 0.6f, h, w);
      break;
    case ActorType::Cyclist:
      // Two wheels (diagonal dots) joined by a frame line.
      for (int d = -hs; d <= hs; ++d)
        put(img, cr, cc + d, contrast * 0.7f, h, w);
      for (int r = -1; r <= 1; ++r)
        for (int c = -1; c <= 1; ++c) {
          put(img, cr + r, cc - hs + c, contrast, h, w);
          put(img, cr + r, cc + hs + c, contrast, h, w);
        }
      break;
    case ActorType::Obstacle:
      // X-shaped hazard marker.
      for (int d = -hs; d <= hs; ++d) {
        put(img, cr + d, cc + d, contrast, h, w);
        put(img, cr + d, cc - d, contrast, h, w);
      }
      break;
  }
}

}  // namespace

nn::Tensor render_scene(const Scene& scene, const VisionTaskConfig& config,
                        Rng& rng) {
  const int h = config.height, w = config.width;
  RRP_CHECK(h >= 8 && w >= 8);
  nn::Tensor img({1, h, w});

  // Road background: brighter toward the bottom of the frame.
  for (int r = 0; r < h; ++r) {
    const float road = static_cast<float>(
        config.road_intensity * (0.5 + 0.5 * static_cast<double>(r) / h));
    for (int c = 0; c < w; ++c)
      img[static_cast<std::int64_t>(r) * w + c] = road;
  }

  // Draw every actor the sensor can resolve; nearest dominates visually
  // because it is drawn last and largest.  Beyond-range actors are not
  // rendered at all — consistent with scene_label(), which ignores them.
  std::vector<const Actor*> sorted;
  for (const Actor& a : scene.actors)
    if (a.distance_m <= kSensorRange_m) sorted.push_back(&a);
  std::sort(sorted.begin(), sorted.end(),
            [](const Actor* a, const Actor* b) {
              return a->distance_m > b->distance_m;
            });
  for (const Actor* a : sorted) {
    const int hs = apparent_half_size(a->distance_m, h);
    float contrast = apparent_contrast(a->distance_m, scene.visibility);
    // Off-corridor traffic sits off the sensor's optical axis: dimmer and
    // clearly separable from in-path actors (gives the classifier both a
    // position and a luminance cue for corridor discipline).
    const bool in_corridor = std::fabs(a->lateral_m) <= kCorridorHalfWidth_m;
    if (!in_corridor) contrast *= 0.5f;
    // Projection: nearer objects sit lower in the frame; lateral offset
    // shifts the column.
    const int cr = std::clamp(
        static_cast<int>(std::lround(h * (0.35 + 0.5 / (1.0 + a->distance_m / 12.0)))),
        hs, h - hs - 1);
    const int cc = std::clamp(
        static_cast<int>(std::lround(w * (0.5 + a->lateral_m * 0.15))),
        hs, w - hs - 1);
    draw_stencil(img, a->type, cr, cc, hs, contrast, h, w);
  }

  // Sensor noise, worse in poor visibility.
  const double sigma =
      config.base_noise * (1.6 - 0.6 * std::clamp(scene.visibility, 0.0, 1.0));
  for (float& v : img.data())
    v = std::clamp(v + static_cast<float>(rng.normal(0.0, sigma)), 0.0f, 2.0f);
  return img;
}

Scene random_scene(const VisionTaskConfig& config, Rng& rng) {
  (void)config;
  Scene s;
  s.ego_speed_mps = rng.uniform(10.0, 35.0);
  s.visibility = rng.uniform(0.55, 1.0);
  const int label = rng.uniform_int(0, kNumClasses - 1);
  if (label != kClearLabel) {
    Actor a;
    a.type = static_cast<ActorType>(label);
    a.distance_m = rng.uniform(3.0, 55.0);
    a.lateral_m = rng.uniform(-kCorridorHalfWidth_m, kCorridorHalfWidth_m);
    a.closing_mps = rng.uniform(-2.0, 12.0);
    s.actors.push_back(a);
  }
  // Deployment scenes contain traffic that is visible but NOT label-
  // relevant (off-corridor); train with the same distractors so the
  // classifier learns the corridor discipline instead of over-detecting.
  const int distractors = rng.bernoulli(0.5) ? rng.uniform_int(1, 2) : 0;
  for (int d = 0; d < distractors; ++d) {
    Actor a;
    a.type = static_cast<ActorType>(rng.uniform_int(0, kActorTypes - 1));
    a.distance_m = rng.uniform(8.0, 55.0);
    const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
    a.lateral_m = side * rng.uniform(2.6, 4.0);  // clearly off-corridor
    a.closing_mps = rng.uniform(-2.0, 6.0);
    s.actors.push_back(a);
  }
  return s;
}

nn::Dataset make_dataset(std::size_t n, const VisionTaskConfig& config,
                         Rng& rng) {
  nn::Dataset data;
  data.num_classes = kNumClasses;
  data.inputs.reserve(n);
  data.labels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Scene s = random_scene(config, rng);
    data.inputs.push_back(render_scene(s, config, rng));
    data.labels.push_back(scene_label(s));
  }
  return data;
}

}  // namespace rrp::sim
