// vision_task.h — the synthetic perception task.
//
// Substitution note (see DESIGN.md): stands in for the camera + CNN
// perception stack.  Each scene renders to a small grayscale frame with a
// class-specific stencil whose apparent size and contrast shrink with
// distance and degrade with visibility, plus sensor noise — so task
// difficulty is coupled to scene parameters exactly where it matters for
// the controller (pruned networks fail first on small/dim targets).
// Labels are exact (we generated the scene), so accuracy is measurable.
#pragma once

#include "nn/train.h"
#include "sim/scenario.h"

namespace rrp::sim {

struct VisionTaskConfig {
  int height = 16;
  int width = 16;
  double base_noise = 0.18;   ///< Gaussian sigma at perfect visibility
  double road_intensity = 0.15;
};

/// Ground-truth label of a scene: dominant actor's type, or kClearLabel.
int scene_label(const Scene& scene);

/// Renders one sensor frame [1, H, W] for the scene.
nn::Tensor render_scene(const Scene& scene, const VisionTaskConfig& config,
                        Rng& rng);

/// Batch-1 input shape for networks consuming this task.
nn::Shape input_shape(const VisionTaskConfig& config);

/// Uniformly samples scenes across classes / distances / visibilities and
/// renders a labelled dataset (used for training and validation).
nn::Dataset make_dataset(std::size_t n, const VisionTaskConfig& config,
                         Rng& rng);

/// Draws a random single-actor (or clear) scene like make_dataset does;
/// exposed so tests can probe the renderer's difficulty coupling.
Scene random_scene(const VisionTaskConfig& config, Rng& rng);

}  // namespace rrp::sim
