#include "sim/perception_criticality.h"

#include <algorithm>
#include <cmath>

#include "sim/scenario.h"
#include "util/checks.h"

namespace rrp::sim {

using core::CriticalityClass;

PerceptionCriticality::PerceptionCriticality()
    : PerceptionCriticality(Config{}) {}

PerceptionCriticality::PerceptionCriticality(Config config)
    : config_(config) {
  RRP_CHECK(config_.high_confidence > 0.0 && config_.high_confidence <= 1.0);
  RRP_CHECK(config_.confirm_frames >= 1);
  RRP_CHECK(config_.hold_frames >= 0);
}

CriticalityClass PerceptionCriticality::update(int predicted_label,
                                               const nn::Tensor& logits_row) {
  RRP_CHECK_MSG(logits_row.dim() == 1 || logits_row.dim() == 2,
                "expected a logits row");
  RRP_CHECK(predicted_label >= 0 && predicted_label < kNumClasses);

  // Softmax confidence of the predicted class.
  const auto data = logits_row.data();
  float max_logit = data[0];
  for (float v : data) max_logit = std::max(max_logit, v);
  double z = 0.0;
  for (float v : data) z += std::exp(static_cast<double>(v) - max_logit);
  const double confidence =
      std::exp(static_cast<double>(
          data[static_cast<std::size_t>(predicted_label)]) -
               max_logit) /
      z;

  const bool detection = predicted_label != kClearLabel;
  if (detection) {
    hold_left_ = config_.hold_frames;
    if (confidence >= config_.high_confidence) ++confident_streak_;
    else confident_streak_ = 0;
    current_ = confident_streak_ >= config_.confirm_frames
                   ? CriticalityClass::High
                   : CriticalityClass::Medium;
  } else {
    confident_streak_ = 0;
    if (hold_left_ > 0) {
      --hold_left_;  // keep the previous assessment briefly (track hold)
    } else {
      current_ = CriticalityClass::Low;
    }
  }
  return current_;
}

void PerceptionCriticality::reset() {
  current_ = CriticalityClass::Low;
  confident_streak_ = 0;
  hold_left_ = 0;
}

}  // namespace rrp::sim
