#include "sim/faults.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <ostream>

#include "sim/runner.h"
#include "sim/scenario_gen.h"
#include "util/checks.h"
#include "util/csv.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace rrp::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::SensorBlackout: return "sensor_blackout";
    case FaultKind::WeightBitFlip: return "weight_bit_flip";
    case FaultKind::StoreBitFlip: return "store_bit_flip";
    case FaultKind::StuckCriticality: return "stuck_criticality";
    case FaultKind::StaleCriticality: return "stale_criticality";
    case FaultKind::LatencySpike: return "latency_spike";
    case FaultKind::DroppedDecision: return "dropped_decision";
    case FaultKind::ArtifactReadFailure: return "artifact_read_failure";
  }
  return "unknown";
}

std::vector<double> FaultMix::weights() const {
  return {sensor_blackout,   weight_bit_flip, store_bit_flip,
          stuck_criticality, stale_criticality, latency_spike,
          dropped_decision,  artifact_read_failure};
}

// rrp-frame-path-stop: fault-plan construction is scenario setup, not
// the frame path; reached only via receiver-blind 'add' name matching.
void FaultPlan::add(FaultEvent e) {
  const auto it = std::upper_bound(
      events.begin(), events.end(), e.frame,
      [](std::int64_t frame, const FaultEvent& ev) { return frame < ev.frame; });
  events.insert(it, e);
}

FaultPlan FaultPlan::random_plan(std::uint64_t seed, int frames, int n_faults,
                                 const FaultMix& mix, int warmup) {
  RRP_CHECK(frames > 0 && n_faults >= 0 && warmup >= 0);
  if (warmup >= frames) warmup = 0;
  const std::vector<double> w = mix.weights();
  double total = 0.0;
  for (double v : w) total += v;
  RRP_CHECK_MSG(total > 0.0, "fault mix enables no kinds");

  Rng rng(seed);
  FaultPlan plan;
  for (int i = 0; i < n_faults; ++i) {
    // Every field is drawn for every event so the stream stays stable: two
    // plans with the same seed but different mixes diverge only in kinds.
    FaultEvent e;
    e.kind = static_cast<FaultKind>(rng.categorical(w));
    e.frame = warmup + static_cast<std::int64_t>(rng.uniform_u64(
                           static_cast<std::uint64_t>(frames - warmup)));
    e.duration_frames = rng.uniform_int(3, 12);
    e.magnitude = rng.uniform(2.0, 6.0);
    e.target = rng.next_u64();
    e.bit = rng.uniform_int(0, 30);
    // Stuck UNDER-reporting (Low/Medium) is the dangerous direction: the
    // controller keeps pruning hard while the plant's true criticality rises.
    e.stuck = static_cast<core::CriticalityClass>(rng.uniform_int(0, 1));
    e.count = rng.uniform_int(1, 3);
    plan.add(e);
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, FaultTargets targets)
    : plan_(plan), targets_(targets) {
  std::stable_sort(
      plan_.events.begin(), plan_.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.frame < b.frame; });
}

void FaultInjector::apply_point_fault(std::size_t idx, const FaultEvent& e) {
  InjectedFault inj;
  inj.event_index = idx;
  inj.kind = e.kind;
  inj.frame = e.frame;
  inj.bit = e.bit & 31;
  switch (e.kind) {
    case FaultKind::WeightBitFlip: {
      if (!targets_.live_net) break;
      auto params = targets_.live_net->params();
      std::int64_t total = 0;
      for (const auto& p : params) total += p.value->numel();
      if (total == 0) break;
      std::int64_t flat = static_cast<std::int64_t>(
          e.target % static_cast<std::uint64_t>(total));
      for (const auto& p : params) {
        if (flat < p.value->numel()) {
          float* v = p.value->raw() + flat;
          std::uint32_t bits = 0;
          std::memcpy(&bits, v, sizeof(bits));
          bits ^= (1u << (e.bit & 31));
          std::memcpy(v, &bits, sizeof(bits));
          inj.param = p.name;
          inj.element = flat;
          inj.applied = true;
          break;
        }
        flat -= p.value->numel();
      }
      break;
    }
    case FaultKind::StoreBitFlip: {
      if (!targets_.store) break;
      const std::int64_t total = targets_.store->total_elements();
      if (total == 0) break;
      std::int64_t flat = static_cast<std::int64_t>(
          e.target % static_cast<std::uint64_t>(total));
      for (const std::string& name : targets_.store->param_names()) {
        const std::int64_t count = targets_.store->get(name).numel();
        if (flat < count) {
          targets_.store->flip_bit(name, flat, e.bit & 31);
          inj.param = name;
          inj.element = flat;
          inj.applied = true;
          break;
        }
        flat -= count;
      }
      break;
    }
    case FaultKind::ArtifactReadFailure:
      if (!targets_.reload) break;
      targets_.reload->inject_read_failures(std::max(1, e.count));
      inj.applied = true;
      break;
    default:
      break;
  }
  static metrics::Counter& injected = metrics::counter("faults.injected");
  if (inj.applied) injected.add(1);
  injected_.push_back(std::move(inj));
}

FrameFaults FaultInjector::begin_frame(std::int64_t frame) {
  while (next_ < plan_.events.size() && plan_.events[next_].frame <= frame) {
    const FaultEvent& e = plan_.events[next_];
    switch (e.kind) {
      case FaultKind::WeightBitFlip:
      case FaultKind::StoreBitFlip:
      case FaultKind::ArtifactReadFailure:
        apply_point_fault(next_, e);
        break;
      default: {
        InjectedFault inj;
        inj.event_index = next_;
        inj.kind = e.kind;
        inj.frame = frame;
        inj.applied = true;
        static metrics::Counter& injected = metrics::counter("faults.injected");
        injected.add(1);
        injected_.push_back(std::move(inj));
        active_.emplace_back(frame + std::max(1, e.duration_frames), next_);
        break;
      }
    }
    ++next_;
  }

  FrameFaults ff;
  std::size_t live = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const auto [end_frame, idx] = active_[i];
    if (end_frame <= frame) continue;  // burst over
    active_[live++] = active_[i];
    const FaultEvent& e = plan_.events[idx];
    switch (e.kind) {
      case FaultKind::SensorBlackout:
        ff.blackout = true;
        break;
      case FaultKind::StuckCriticality:
        ff.stuck_criticality = e.stuck;
        break;
      case FaultKind::StaleCriticality:
        ff.stale_criticality = true;
        break;
      case FaultKind::LatencySpike:
        ff.latency_scale *= std::max(1.0, e.magnitude);
        break;
      case FaultKind::DroppedDecision:
        ff.drop_decision = true;
        break;
      default:
        break;
    }
  }
  active_.resize(live);
  return ff;
}

std::uint64_t live_network_digest(nn::Network& net) {
  std::vector<std::uint64_t> parts;
  for (const auto& p : net.params())
    parts.push_back(core::tensor_digest(*p.value));
  if (parts.empty()) return core::fnv1a64(nullptr, 0);
  return core::fnv1a64(parts.data(), parts.size() * sizeof(std::uint64_t));
}

std::vector<std::uint64_t> reload_level_digests(core::ReloadProvider& reload) {
  const int original = reload.current_level();
  std::vector<std::uint64_t> digests;
  digests.reserve(static_cast<std::size_t>(reload.level_count()));
  for (int k = 0; k < reload.level_count(); ++k) {
    reload.set_level(k);
    digests.push_back(live_network_digest(reload.active_network()));
  }
  reload.set_level(original);
  return digests;
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

const char* campaign_arm_name(CampaignArm arm) {
  switch (arm) {
    case CampaignArm::Reversible: return "reversible";
    case CampaignArm::ReloadMemory: return "reload-memory";
    case CampaignArm::ReloadDisk: return "reload-disk";
  }
  return "unknown";
}

namespace {

Scenario make_suite_by_name(const std::string& name, int frames,
                            std::uint64_t seed) {
  // Shared resolver: legacy names, built-in DSL specs, "dsl:<line>".
  return make_suite_or_dsl(name, frames, seed);
}

std::unique_ptr<core::Policy> make_campaign_policy(
    const std::string& name, const core::SafetyConfig& certified,
    int hysteresis, int level_count) {
  if (name.rfind("fixed", 0) == 0) {
    int level = 0;
    if (name.size() > 5) {
      level = 0;
      for (std::size_t i = 5; i < name.size(); ++i) {
        RRP_CHECK_MSG(name[i] >= '0' && name[i] <= '9',
                      "bad fixed policy spec '" << name << "'");
        level = level * 10 + (name[i] - '0');
      }
    }
    RRP_CHECK_MSG(level < level_count,
                  "fixed policy level " << level << " outside ladder");
    return std::make_unique<core::FixedPolicy>(level);
  }
  RRP_CHECK_MSG(name == "greedy",
                "unknown campaign policy '" << name << "' (greedy|fixed<K>)");
  return std::make_unique<core::CriticalityGreedyPolicy>(certified, hysteresis,
                                                         level_count);
}

bool is_weight_fault(FaultKind k) {
  return k == FaultKind::WeightBitFlip || k == FaultKind::StoreBitFlip;
}

struct SummaryAcc {
  std::int64_t injected = 0;
  std::int64_t detected = 0;
  std::int64_t healed = 0;
  double detect_latency_sum = 0.0;
  double recovery_ms_sum = 0.0;
  double recovery_bytes_sum = 0.0;
  std::int64_t recoveries = 0;
};

}  // namespace

FaultCampaignResult run_fault_campaign(const CampaignInputs& inputs,
                                       const FaultCampaignConfig& config) {
  RRP_CHECK_MSG(inputs.net != nullptr && inputs.levels != nullptr,
                "campaign needs a provisioned network and level library");
  RRP_CHECK(inputs.levels->level_count() >= 1);
  RRP_CHECK(!config.suites.empty() && !config.arms.empty());
  RRP_CHECK(config.frames > 0 && config.faults_per_run >= 0);

  RRP_SPAN_VAR(campaign_span, "faults.campaign");
  campaign_span.add_items(
      static_cast<std::int64_t>(config.suites.size() * config.arms.size()));
  FaultCampaignResult result;
  std::vector<SummaryAcc> acc(config.arms.size());
  // Faults mutate *inputs.net (and, via a corrupted golden store, what a
  // provider's destructor restores into it); re-baseline between arms so
  // every arm starts from identical weights.
  const core::WeightStore pristine = core::WeightStore::snapshot(*inputs.net);

  for (std::size_t s = 0; s < config.suites.size(); ++s) {
    const std::string& suite = config.suites[s];
    const std::uint64_t suite_seed =
        config.seed + 0x1000ull * static_cast<std::uint64_t>(s);
    const Scenario scenario =
        make_suite_by_name(suite, config.frames, suite_seed);
    // One plan per suite, shared by every arm: recovery numbers are paired.
    const FaultPlan plan = FaultPlan::random_plan(
        suite_seed ^ 0x9E3779B97F4A7C15ull, config.frames,
        config.faults_per_run, config.mix);

    for (std::size_t a = 0; a < config.arms.size(); ++a) {
      const CampaignArm arm = config.arms[a];
      FaultHarness harness;
      std::unique_ptr<core::ReversiblePruner> reversible;
      std::unique_ptr<core::ReloadProvider> reload;
      std::unique_ptr<core::IntegrityChecker> checker;
      std::vector<std::uint64_t> digests;
      core::InferenceProvider* provider = nullptr;

      if (arm == CampaignArm::Reversible) {
        reversible =
            std::make_unique<core::ReversiblePruner>(*inputs.net, *inputs.levels);
        if (!inputs.bn_states.empty())
          reversible->set_bn_states(inputs.bn_states);
        checker = std::make_unique<core::IntegrityChecker>(reversible->store());
        harness.targets.live_net = &reversible->network();
        harness.targets.store = &reversible->mutable_store();
        harness.checker = checker.get();
        harness.levels = inputs.levels;
        provider = reversible.get();
      } else {
        const auto source = arm == CampaignArm::ReloadMemory
                                ? core::ReloadProvider::Source::Memory
                                : core::ReloadProvider::Source::Disk;
        reload = std::make_unique<core::ReloadProvider>(
            *inputs.net, *inputs.levels, source, config.artifact_dir,
            inputs.bn_states);
        digests = reload_level_digests(*reload);
        harness.targets.live_net = &reload->active_network();
        harness.targets.reload = reload.get();
        harness.reload = reload.get();
        harness.reload_digests = &digests;
        provider = reload.get();
      }

      std::unique_ptr<core::Policy> policy = make_campaign_policy(
          config.policy, inputs.certified, config.hysteresis,
          provider->level_count());
      core::SafetyMonitor monitor(inputs.certified);
      core::RuntimeController controller(*policy, *provider, &monitor);

      RunConfig rc;
      rc.deadline_ms = config.deadline_ms;
      rc.faults = plan;
      rc.scrub_period_frames = config.scrub_period_frames;
      rc.self_heal = true;
      rc.watchdog_overrun_frames = config.watchdog_overrun_frames;
      rc.noise_seed = suite_seed ^ 0x5DEECE66Dull;

      RRP_SPAN_VAR(run_span, "faults.run");
      const RunResult run = run_scenario(scenario, controller, rc, &harness);
      run_span.add_items(
          static_cast<std::int64_t>(harness.injected.size()));

      for (const InjectedFault& inj : harness.injected) {
        FaultOutcome row;
        row.suite = suite;
        row.provider = run.provider;
        row.policy = run.policy;
        row.seed = config.seed;
        row.fault_id = inj.event_index;
        row.kind = inj.kind;
        row.inject_frame = inj.frame;
        row.applied = inj.applied;
        if (is_weight_fault(inj.kind) && inj.applied) {
          // Prefer a detection naming the corrupted parameter (reversible
          // scrub); fall back to the first digest-mismatch detection at or
          // after the injection frame (reload arm).
          const core::AssuranceRecord* hit = nullptr;
          for (const core::AssuranceRecord& rec : monitor.log()) {
            if (rec.kind != core::AssuranceKind::IntegrityDetect) continue;
            if (rec.frame < inj.frame) continue;
            const bool names_param =
                !inj.param.empty() &&
                rec.detail.find(inj.param) != std::string::npos;
            if (names_param) {
              hit = &rec;
              break;
            }
            if (hit == nullptr) hit = &rec;
          }
          if (hit != nullptr) {
            row.detect_frame = hit->frame;
            row.detect_latency_frames = hit->frame - inj.frame;
            for (const FaultHarness::Recovery& rcv : harness.recoveries) {
              if (rcv.frame < row.detect_frame) continue;
              row.recovery_mechanism = rcv.mechanism;
              row.recovery_elements = rcv.elements;
              row.recovery_bytes = rcv.bytes;
              row.recovery_modeled_ms = rcv.modeled_latency_ms;
              // A corrupted golden store is detected but has no local
              // repair; everything else heals bit-exactly.
              row.healed =
                  rcv.recovered && inj.kind != FaultKind::StoreBitFlip;
              break;
            }
          }
        }
        row.run_safety_violations = run.summary.safety_violations;
        row.run_watchdog_degrades = monitor.watchdog_degrade_count();
        row.run_accuracy = run.summary.accuracy;
        result.outcomes.push_back(row);

        if (is_weight_fault(inj.kind) && inj.applied) {
          SummaryAcc& arm_acc = acc[a];
          ++arm_acc.injected;
          if (row.detect_frame >= 0) {
            ++arm_acc.detected;
            arm_acc.detect_latency_sum +=
                static_cast<double>(row.detect_latency_frames);
          }
          if (row.healed) ++arm_acc.healed;
          if (!row.recovery_mechanism.empty()) {
            ++arm_acc.recoveries;
            arm_acc.recovery_ms_sum += row.recovery_modeled_ms;
            arm_acc.recovery_bytes_sum +=
                static_cast<double>(row.recovery_bytes);
          }
        }
      }

      // Destroy the provider (its destructor restores into *inputs.net),
      // then re-baseline from the pristine snapshot.
      checker.reset();
      reversible.reset();
      reload.reset();
      pristine.restore_all(*inputs.net);
    }
  }

  for (std::size_t a = 0; a < config.arms.size(); ++a) {
    FaultCampaignSummary sum;
    sum.weight_faults_injected = acc[a].injected;
    sum.weight_faults_detected = acc[a].detected;
    sum.weight_faults_healed = acc[a].healed;
    if (acc[a].detected > 0)
      sum.mean_detect_latency_frames =
          acc[a].detect_latency_sum / static_cast<double>(acc[a].detected);
    if (acc[a].recoveries > 0) {
      sum.mean_recovery_ms =
          acc[a].recovery_ms_sum / static_cast<double>(acc[a].recoveries);
      sum.mean_recovery_bytes =
          acc[a].recovery_bytes_sum / static_cast<double>(acc[a].recoveries);
    }
    result.summaries.emplace_back(campaign_arm_name(config.arms[a]), sum);
  }
  return result;
}

void write_campaign_csv(const FaultCampaignResult& result, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"suite", "provider", "policy", "seed", "fault_id", "kind",
              "inject_frame", "applied", "detect_frame",
              "detect_latency_frames", "recovery_mechanism",
              "recovery_elements", "recovery_bytes", "recovery_modeled_ms",
              "healed", "run_safety_violations", "run_watchdog_degrades",
              "run_accuracy"});
  for (const FaultOutcome& row : result.outcomes) {
    csv.row({row.suite, row.provider, row.policy, std::to_string(row.seed),
             std::to_string(row.fault_id), fault_kind_name(row.kind),
             std::to_string(row.inject_frame), row.applied ? "1" : "0",
             std::to_string(row.detect_frame),
             std::to_string(row.detect_latency_frames),
             row.recovery_mechanism, std::to_string(row.recovery_elements),
             std::to_string(row.recovery_bytes),
             CsvWriter::num(row.recovery_modeled_ms, 6),
             row.healed ? "1" : "0",
             std::to_string(row.run_safety_violations),
             std::to_string(row.run_watchdog_degrades),
             CsvWriter::num(row.run_accuracy, 6)});
  }
}

}  // namespace rrp::sim
