// campaign.h — Monte-Carlo robustness campaign with streaming tail
// statistics (ROADMAP item 4: the statistical safety case).
//
// A campaign fans thousands of scenario×policy×fault-plan cells over the
// deterministic thread pool.  Each cell is one full closed-loop run
// (sim/runner.h) of a DSL-generated scenario (sim/scenario_gen.h) under a
// seeded fault plan, on a private clone of the provisioned network (faults
// corrupt weights; cells must not share state).  Per-cell results fold
// into FIXED-SIZE accumulators — mergeable quantile sketches
// (util/qsketch.h) for missed-critical rate, detection latency,
// time-to-recovery and per-frame deadline slack, plus integer counters and
// a bounded worst-cell list — so peak memory is O(cells in flight), never
// O(cells), and no per-run CSV explosion occurs.
//
// Determinism.  Cell seeds derive from (campaign seed, cell index) alone;
// cells are computed block-by-block (block size fixed, independent of both
// the thread count and the total cell count) and folded on the calling
// thread in cell-index order.  Sketch merges are commutative integer adds,
// so the aggregate report is byte-identical for any RRP_THREADS — the
// thread-count-invariance invariant extends from kernels to campaign
// statistics (DESIGN.md, "Statistical safety case").
//
// Worst-case capture.  The aggregate keeps the top-K most severe cells
// with their full identity (canonical DSL line + derived seeds), enough to
// re-run any of them serially under run_blackbox and pack a replayable
// incident bundle: `rrp_cli campaign` writes those bundles and
// `rrp_cli blackbox replay` reproduces them byte-identically.
#pragma once

#include <iosfwd>

#include "sim/faults.h"
#include "sim/incident_replay.h"
#include "sim/scenario_gen.h"
#include "util/qsketch.h"

namespace rrp::sim {

/// Campaign-level configuration (parsed from a spec file by
/// parse_campaign_spec, or built programmatically).
struct CampaignSpec {
  std::uint64_t seed = 20240325;
  int frames = 300;
  int replicates = 1;       ///< seeded repeats per scenario×policy
  int faults_per_cell = 4;  ///< 0 = fault-free campaign
  FaultMix mix;
  std::vector<ScenarioSpec> scenarios;          ///< >= 1
  std::vector<std::string> policies = {"greedy"};  ///< "greedy" / "fixed<K>"
  double deadline_ms = 12.0;
  int hysteresis = 6;
  int scrub_period_frames = 20;
  int watchdog_overrun_frames = 8;
  int sensing_delay_frames = 1;
  double sketch_gamma = 0.01;  ///< relative accuracy of the tail sketches
  int worst_cells = 1;         ///< top-K worst cells to keep identity for
  /// Cells decoded per fan-out block; bounds in-flight memory.  0 = the
  /// default (64).  Aggregates do not depend on this value.
  int block_cells = 0;
};

/// scenarios × policies × replicates.
std::int64_t campaign_cell_count(const CampaignSpec& spec);

/// Parses the line-based campaign spec-file format ('#' comments;
/// `key value` pairs; one `scenario <builtin-name | spec-line>` and one
/// `policy <name>` per line).  Throws rrp::SerializationError with a line
/// diagnostic on malformed input.
CampaignSpec parse_campaign_spec(std::istream& in);
CampaignSpec load_campaign_spec(const std::string& path);

/// Identity of one cell: everything needed to regenerate its exact run.
struct CampaignCell {
  std::int64_t index = -1;
  std::string scenario;  ///< canonical DSL line (encode_scenario_spec)
  std::string policy;
  std::uint64_t scenario_seed = 0;
  std::uint64_t noise_seed = 0;
  std::uint64_t fault_seed = 0;
};

/// Decodes cell `index` of the campaign (derived seeds included).
CampaignCell campaign_cell(const CampaignSpec& spec, std::int64_t index);

/// One worst-list entry: cell identity plus the severity components, in
/// lexicographic comparison order (ties break toward the lower index).
struct CampaignWorstCell {
  CampaignCell cell;
  std::int64_t missed_critical = 0;     ///< missed critical detections
  std::int64_t true_violations = 0;     ///< ground-truth cap violations
  std::int64_t watchdog_degrades = 0;
  std::int64_t deadline_misses = 0;
  double min_slack_ms = 0.0;  ///< worst per-frame deadline slack
};

/// Returns true when a is strictly more severe than b.
bool worse_cell(const CampaignWorstCell& a, const CampaignWorstCell& b);

/// The streaming aggregate: fixed size regardless of cell count.
struct CampaignAggregate {
  std::int64_t cells = 0;
  std::int64_t frames = 0;
  std::int64_t critical_frames = 0;
  std::int64_t missed_critical_frames = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t safety_violations = 0;       ///< sensed basis
  std::int64_t true_safety_violations = 0;  ///< ground-truth basis
  std::int64_t vetoes = 0;
  std::int64_t watchdog_degrades = 0;
  std::int64_t level_switches = 0;
  std::int64_t weight_faults_injected = 0;
  std::int64_t weight_faults_detected = 0;
  std::int64_t weight_faults_healed = 0;
  QuantileSketch missed_critical_rate;   ///< per cell
  QuantileSketch detect_latency_frames;  ///< per detected weight fault
  QuantileSketch recovery_ms;            ///< per recovery (modeled repair)
  QuantileSketch deadline_slack_ms;      ///< per frame (negative = overrun)
  std::vector<CampaignWorstCell> worst;  ///< most severe first, size <= K
};

/// Runs the campaign.  Deterministic: byte-identical aggregates (and
/// report) for a given spec at any RRP_THREADS.  The caller's network is
/// never mutated (each cell clones it).
CampaignAggregate run_campaign(const CampaignSpec& spec,
                               const CampaignInputs& inputs);

/// Renders the single deterministic aggregate report.
void write_campaign_report(const CampaignSpec& spec,
                           const CampaignAggregate& agg, std::ostream& out);

/// Blackbox spec that re-runs one cell bit-exactly (suite string is the
/// "dsl:" form, so the resulting bundle is self-contained and replays via
/// `rrp_cli blackbox replay`).
BlackboxRunSpec blackbox_spec_for_cell(const CampaignSpec& spec,
                                       const CampaignCell& cell,
                                       const std::string& model);

// ---------------------------------------------------------------------------
// Streaming tail stats over the fault campaign (sim/faults.h) — the first
// non-Monte-Carlo client of the aggregator: `rrp_cli faults` prints these
// instead of exploding per-fault CSV rows (CSV stays behind --csv).
// ---------------------------------------------------------------------------

struct FaultTailStats {
  std::string provider;
  std::int64_t injected = 0;
  std::int64_t detected = 0;
  std::int64_t healed = 0;
  QuantileSketch detect_latency_frames;
  QuantileSketch recovery_ms;
  QuantileSketch recovery_bytes;
};

/// Folds per-fault outcomes into per-provider tail stats (provider order =
/// the result's deterministic summary order).
std::vector<FaultTailStats> fold_fault_outcomes(
    const FaultCampaignResult& result, double gamma = 0.01);

void write_fault_tail_stats(const std::vector<FaultTailStats>& stats,
                            std::ostream& out);

}  // namespace rrp::sim
