// runner.h — the closed perception-control loop.
//
// Per frame: classify the scene's criticality (Monitor), let the runtime
// controller pick and apply a pruning level (Analyze/Plan/Execute), render
// the sensor frame, run inference through the provider, and account
// latency/energy with the platform model.  Produces the Telemetry that
// every end-to-end experiment (R-T2, R-F3, R-F4, R-F5) summarizes.
#pragma once

#include "core/controller.h"
#include "core/telemetry.h"
#include "sim/criticality.h"
#include "sim/faults.h"
#include "sim/perception_criticality.h"
#include "sim/platform_model.h"
#include "sim/vision_task.h"

namespace rrp::core {
class FlightRecorder;  // core/flight_recorder.h
class SloMonitor;      // core/slo.h
}  // namespace rrp::core

namespace rrp::sim {

/// Where the controller's criticality signal comes from.
enum class CriticalitySource {
  GroundTruthTtc,   ///< independent ranging channel (radar-like), delayed
  Perception,       ///< the perception network's own (previous) output
  PerceptionFloor,  ///< perception-derived, but never below Medium
};

struct RunConfig {
  double deadline_ms = 5.0;
  CriticalitySource criticality_source = CriticalitySource::GroundTruthTtc;
  PerceptionCriticality::Config perception_criticality;
  /// Frames of perception/monitoring latency before a criticality change
  /// is visible to the controller AND the safety monitor (the plant's
  /// true criticality still scores missed detections). 0 = idealized.
  int sensing_delay_frames = 1;
  /// Whole-scenario energy budget; 0 disables the budget signal (the
  /// controller then always sees energy_budget_frac == 1).
  double energy_budget_mj = 0.0;
  /// Sensor fault injection: per-frame probability that the camera frame
  /// is lost (rendered as an empty road).  Ground truth is unchanged, so
  /// blackout frames with an actor present count as missed detections —
  /// the fault-tolerance experiments use this to stress the loop.  This is
  /// per-frame Bernoulli sugar over FaultKind::SensorBlackout; scheduled
  /// blackout bursts go in `faults`.
  double sensor_blackout_prob = 0.0;
  /// Seeded fault schedule applied at frame boundaries (see sim/faults.h).
  /// Weight/store/artifact faults additionally need a FaultHarness passed
  /// to run_scenario; the sensor/timing kinds work with the plan alone.
  FaultPlan faults;
  /// Integrity scrub cadence in frames (0 = no scrubbing).  Requires a
  /// harness with a checker (reversible arm) or reload digests (reload
  /// arm) to have any effect.
  int scrub_period_frames = 0;
  /// Repair detected weight divergence in place (reversible arm) or by
  /// re-reading the artifact (reload arm).  Detection-only when false.
  bool self_heal = true;
  /// Deadline watchdog: after this many CONSECUTIVE deadline overruns the
  /// runner forces the certified max level for the sensed criticality and
  /// records a WatchdogDegrade assurance record.  0 disables.
  int watchdog_overrun_frames = 0;
  /// Record MEASURED per-frame inference wall-clock into RunResult::wall
  /// next to the platform-model numbers.  Purely additive: telemetry,
  /// metrics and trace output are byte-identical either way.
  bool measure_wall = false;
  PlatformConfig platform;
  CriticalityConfig criticality;
  VisionTaskConfig vision;
  std::uint64_t noise_seed = 1234;  ///< sensor-noise stream
  /// Optional black-box flight recorder: fed one FlightRecord per frame
  /// (criticality, levels, slack, assurance deltas, span digest).  Pure
  /// driving-thread bookkeeping — no effect on the run itself.
  core::FlightRecorder* flight_recorder = nullptr;
  /// Optional SLO monitor: evaluated once per frame against the metrics
  /// registry; certified-level violations, watchdog degrades and integrity
  /// detections are additionally noted as direct incidents.
  core::SloMonitor* slo = nullptr;
};

/// Measured wall-clock of one frame's inference (util/timer.h facade).
/// Wall numbers are machine-dependent by nature, so they are kept strictly
/// OUT of Telemetry, metrics and trace — the deterministic observability
/// artifacts stay byte-identical whether or not measurement is on.
struct WallFrame {
  std::int64_t frame = 0;
  int level = 0;           ///< executed level during the measured inference
  double infer_us = 0.0;   ///< measured wall-clock of provider.infer()
  double modeled_us = 0.0; ///< platform-model latency charged to the frame
};

/// Per-run collection of measured frames (empty unless
/// RunConfig::measure_wall).
struct WallStats {
  bool enabled = false;
  std::vector<WallFrame> frames;
  /// Mean measured inference µs over frames executed at `level`
  /// (level == -1: all frames).  Returns 0 when nothing matched.
  double mean_infer_us(int level = -1) const;
};

struct RunResult {
  std::string scenario;
  std::string provider;
  std::string policy;
  core::Telemetry telemetry;
  core::RunSummary summary;
  WallStats wall;  ///< measured wall-clock channel (see WallStats)
};

/// Runs the full closed loop over one scenario.
RunResult run_scenario(const Scenario& scenario,
                       core::RuntimeController& controller,
                       const RunConfig& config);

/// As above, with fault-injection targets and integrity wiring.  The
/// harness (optional) receives every detection/recovery; weight faults in
/// `config.faults` are skipped without it.
RunResult run_scenario(const Scenario& scenario,
                       core::RuntimeController& controller,
                       const RunConfig& config, FaultHarness* harness);

/// Offline profiling of a provider's level ladder: modeled latency/energy
/// from active MACs and measured accuracy on `eval`.  Restores level 0.
core::LevelProfile profile_levels(core::InferenceProvider& provider,
                                  const PlatformModel& platform,
                                  const nn::Dataset& eval,
                                  const nn::Shape& input_shape,
                                  int eval_batch = 64);

/// Accuracy of a provider at its CURRENT level over a dataset.
double provider_accuracy(core::InferenceProvider& provider,
                         const nn::Dataset& data, int batch = 64);

}  // namespace rrp::sim
