#include "sim/frame_engine.h"

#include <algorithm>

#include "core/flight_recorder.h"
#include "core/slo.h"
#include "nn/loss.h"
#include "util/checks.h"
#include "util/timer.h"
#include "util/trace.h"
#include "util/wprof.h"

namespace rrp::sim {

StreamState::StreamState(const Scenario& scenario_in,
                         core::RuntimeController& controller_in,
                         FaultHarness* harness_in, const RunConfig& config)
    : scenario(&scenario_in),
      controller(&controller_in),
      harness(harness_in),
      noise(config.noise_seed),
      energy_left(config.energy_budget_mj),
      estimator(config.perception_criticality),
      injector(config.faults, harness_in ? harness_in->targets : FaultTargets{}) {
  result.scenario = scenario_in.name;
  result.provider = controller_in.provider().name();
  result.policy = controller_in.policy().name();
  core::SafetyMonitor* monitor = controller_in.monitor();
  prev_detects = monitor ? monitor->integrity_detect_count() : 0;
  prev_repairs = monitor ? monitor->integrity_repair_count() : 0;
  prev_degrades = monitor ? monitor->watchdog_degrade_count() : 0;
}

FrameEngine::FrameEngine(const RunConfig& config,
                         const metrics::MetricDomain* stream_domain)
    : config_(config),
      platform_(config.platform),
      in_shape_(input_shape(config.vision)),
      frames_ctr_(&metrics::counter("runner.frames")),
      misses_ctr_(&metrics::counter("runner.deadline_misses")),
      budget_gauge_(&metrics::gauge("runner.energy_budget_frac")),
      frame_hist_(&metrics::histogram("runner.frame_ms")),
      switch_hist_(&metrics::histogram("prune.switch_us")),
      detect_hist_(&metrics::histogram("integrity.detect_latency_frames")) {
  if (stream_domain != nullptr)
    stream_frames_ctr_ = &stream_domain->counter("serve.stream.frames");
  RRP_CHECK(config_.sensing_delay_frames >= 0);
  RRP_CHECK(config_.sensor_blackout_prob >= 0.0 &&
            config_.sensor_blackout_prob <= 1.0);
  RRP_CHECK(config_.scrub_period_frames >= 0);
  RRP_CHECK(config_.watchdog_overrun_frames >= 0);
}

StreamState FrameEngine::make_stream(const Scenario& scenario,
                                     core::RuntimeController& controller,
                                     FaultHarness* harness) const {
  RRP_CHECK_MSG(!scenario.scenes.empty(), "scenario has no frames");
  return StreamState(scenario, controller, harness, config_);
}

// First injected weight/store flip not yet credited to a detection; a
// scrub detection credits every applied flip up to that point (the
// scrub is exhaustive, so they are all detected at once).
void FrameEngine::credit_detect_latency(StreamState& s,
                                        std::int64_t at_frame) const {
  const std::vector<InjectedFault>& inj = s.injector.injected();
  for (; s.credit_idx < inj.size(); ++s.credit_idx) {
    const InjectedFault& fi = inj[s.credit_idx];
    if ((fi.kind == FaultKind::WeightBitFlip ||
         fi.kind == FaultKind::StoreBitFlip) &&
        fi.applied)
      detect_hist_->observe(static_cast<double>(at_frame - fi.frame));
  }
}

void FrameEngine::step(StreamState& s) const {
  RRP_CHECK(!s.done());
  const RunConfig& config = config_;
  const PlatformModel& platform = platform_;
  core::RuntimeController& controller = *s.controller;
  core::SafetyMonitor* monitor = controller.monitor();
  FaultHarness* harness = s.harness;
  const Scenario& scenario = *s.scenario;
  core::FlightRecorder* recorder = config.flight_recorder;
  core::SloMonitor* slo = config.slo;

  const std::size_t f = s.frame;
  const std::size_t span_base = trace::spans().size();
  // Frame span: every sub-span (control, render, infer, scrub...) nests
  // under it, and its modeled_us is set to exactly the platform-model
  // time the FrameRecord charges (latency + switch), so the span CSV
  // reconciles with Telemetry to the bit (core/metrics.h).
  trace::ScopedFrame frame_tag(static_cast<std::int64_t>(f));
  RRP_SPAN_VAR(frame_span, "frame");
  const Scene& scene = scenario.scenes[f];
  const FrameFaults faults =
      s.injector.begin_frame(static_cast<std::int64_t>(f));
  // The controller and monitor see the criticality the perception stack
  // has already published — `sensing_delay_frames` behind the world.
  const std::size_t sensed_frame =
      f >= static_cast<std::size_t>(config.sensing_delay_frames)
          ? f - static_cast<std::size_t>(config.sensing_delay_frames)
          : 0;
  const Scene& sensed_scene = scenario.scenes[sensed_frame];

  // Monitor: perception context (criticality) and platform state.
  core::ControlInput input;
  input.frame = static_cast<std::int64_t>(f);
  switch (config.criticality_source) {
    case CriticalitySource::GroundTruthTtc:
      input.criticality = classify_scene(sensed_scene, config.criticality);
      break;
    case CriticalitySource::Perception:
      input.criticality = s.perceived;  // last frame's own assessment
      break;
    case CriticalitySource::PerceptionFloor:
      input.criticality =
          std::max(s.perceived, core::CriticalityClass::Medium);
      break;
  }
  // Sensor faults override what the controller gets to see; the plant's
  // true criticality (rec.criticality below) is unaffected.
  if (faults.stuck_criticality)
    input.criticality = *faults.stuck_criticality;
  else if (faults.stale_criticality)
    input.criticality = s.last_published;
  s.last_published = input.criticality;
  input.deadline_ms = config.deadline_ms;
  input.energy_budget_frac =
      config.energy_budget_mj > 0.0
          ? std::clamp(s.energy_left / config.energy_budget_mj, 0.0, 1.0)
          : 1.0;

  // Analyze/Plan/Execute: the controller applies a (screened) level —
  // unless this frame's decision is dropped by a fault, in which case the
  // provider coasts at its current level (still audited).
  core::ControlDecision d;
  {
    RRP_SPAN("control");
    if (faults.drop_decision) {
      d.requested_level = controller.provider().current_level();
      d.enforced_level = d.requested_level;
      if (monitor)
        monitor->audit(input.frame, input.criticality, d.enforced_level);
    } else {
      d = controller.step(input);
    }
  }

  // Perceive: render the sensor frame (maybe lost) and run inference.
  const bool blackout = (config.sensor_blackout_prob > 0.0 &&
                         s.noise.bernoulli(config.sensor_blackout_prob)) ||
                        faults.blackout;
  Scene sensed_view = scene;
  if (blackout) sensed_view.actors.clear();  // empty road, noise only
  nn::Tensor frame;
  {
    RRP_SPAN("render");
    frame = render_scene(sensed_view, config.vision, s.noise);
  }
  nn::Tensor logits;
  double infer_wall_us = 0.0;
  {
    RRP_SPAN("infer");
    nn::Shape batched = frame.shape();
    batched.insert(batched.begin(), 1);
    if (config.measure_wall) {
      // Measured wall-clock rides NEXT TO the deterministic pipeline:
      // the reading lands only in RunResult::wall, never in telemetry,
      // metrics or trace.
      Timer wall;
      logits = controller.provider().infer(frame.reshape(batched));
      infer_wall_us = wall.elapsed_us();
    } else {
      logits = controller.provider().infer(frame.reshape(batched));
    }
  }
  const int pred = nn::argmax_rows(logits)[0];
  const int label = scene_label(scene);
  s.perceived = s.estimator.update(pred, logits.reshape({logits.size(-1)}));

  // Account: platform-model latency/energy for this frame.
  const std::int64_t macs = controller.provider().active_macs(in_shape_);
  const bool switched = d.transition.from_level != d.transition.to_level;
  double switch_us =
      (switched ? platform.switch_latency_us(d.transition.bytes_written)
                : 0.0) +
      d.transition.backoff_us + s.carried_switch_us;
  double switch_energy =
      (switched ? platform.switch_energy_mj(d.transition.bytes_written)
                : 0.0) +
      s.carried_switch_energy;
  s.carried_switch_us = 0.0;
  s.carried_switch_energy = 0.0;

  // Integrity scrub: verify live weights against golden ⊙ mask
  // (reversible arm) or against the clean artifact digest (reload arm),
  // and repair in place when configured.  Modeled repair cost is charged
  // to this frame's switch budget.
  if (harness != nullptr && config.scrub_period_frames > 0 &&
      (f + 1) % static_cast<std::size_t>(config.scrub_period_frames) == 0) {
    // Fast-path arm: the masked golden arm lags the active compacted
    // level; align it here (O(Δ), scrub cadence) so golden ⊙ mask below
    // references the level actually executing.
    if (harness->ladder != nullptr) harness->ladder->sync_masked();
    if (harness->checker != nullptr && harness->levels != nullptr &&
        harness->targets.live_net != nullptr) {
      const prune::NetworkMask& mask =
          harness->levels->mask(controller.provider().current_level());
      core::ScrubReport scrub =
          harness->checker->scrub(*harness->targets.live_net, mask);
      scrub.frame = input.frame;
      if (!scrub.clean()) {
        credit_detect_latency(s, input.frame);
        if (monitor)
          for (const core::IntegrityFinding& finding : scrub.findings)
            monitor->record_integrity_detect(
                input.frame, finding.diverged_elements,
                finding.param +
                    (finding.store_corrupt ? " store-corrupt" : ""));
        if (config.self_heal) {
          const core::RepairReport fix = harness->checker->repair(
              *harness->targets.live_net, mask, scrub);
          const double heal_us = platform.switch_latency_us(fix.bytes_written);
          switch_us += heal_us;
          switch_energy += platform.switch_energy_mj(fix.bytes_written);
          if (monitor)
            monitor->record_integrity_repair(
                input.frame, fix.elements_repaired,
                fix.fully_repaired() ? "self-heal"
                                     : "self-heal (store corrupt)");
          harness->recoveries.push_back(
              {input.frame, "self-heal", fix.elements_repaired,
               fix.bytes_written, heal_us / 1000.0, fix.fully_repaired()});
        }
      }
    } else if (harness->reload != nullptr &&
               harness->reload_digests != nullptr &&
               harness->targets.live_net != nullptr) {
      const int level = controller.provider().current_level();
      const std::uint64_t digest =
          live_network_digest(*harness->targets.live_net);
      if (digest !=
          (*harness->reload_digests)[static_cast<std::size_t>(level)]) {
        credit_detect_latency(s, input.frame);
        if (monitor)
          monitor->record_integrity_detect(
              input.frame, 0,
              "digest mismatch at level " + std::to_string(level));
        if (config.self_heal) {
          const core::TransitionStats reload =
              harness->reload->reload_current();
          const double reload_us =
              platform.switch_latency_us(reload.bytes_written) +
              reload.backoff_us;
          switch_us += reload_us;
          switch_energy += platform.switch_energy_mj(reload.bytes_written);
          if (monitor)
            monitor->record_integrity_repair(input.frame,
                                             reload.elements_changed,
                                             "full artifact reload");
          harness->recoveries.push_back(
              {input.frame, "reload", reload.elements_changed,
               reload.bytes_written, reload_us / 1000.0, true});
        }
      }
    }
  }

  core::FrameRecord rec;
  rec.frame = input.frame;
  rec.criticality = classify_scene(scene, config.criticality);
  rec.requested_level = d.requested_level;
  rec.executed_level = controller.provider().current_level();
  rec.latency_ms = platform.latency_ms(macs) * faults.latency_scale;
  rec.energy_mj = platform.energy_mj(macs) + switch_energy;
  rec.switch_us = switch_us;
  rec.deadline_ms = config.deadline_ms;
  rec.correct = pred == label;
  rec.veto = d.veto;
  rec.violation = monitor != nullptr &&
                  rec.executed_level >
                      monitor->certified_max(input.criticality);
  rec.true_violation =
      monitor != nullptr &&
      rec.executed_level > monitor->certified_max(rec.criticality);
  s.result.telemetry.add(rec);
  if (config.measure_wall) {
    s.result.wall.frames.push_back({rec.frame, rec.executed_level,
                                    infer_wall_us, rec.latency_ms * 1000.0});
    // Per-level measured breakdown for the wall-channel profiler.  Like
    // RunResult::wall, this never touches telemetry/trace/metrics and
    // wprof::record is a no-op unless --wall flipped the enable switch.
    wprof::record("infer.L" + std::to_string(rec.executed_level),
                  infer_wall_us);
  }

  const double frame_ms = rec.latency_ms + rec.switch_us / 1000.0;
  frame_span.add_modeled_us(rec.latency_ms * 1000.0 + rec.switch_us);
  frames_ctr_->add(1);
  if (stream_frames_ctr_ != nullptr) stream_frames_ctr_->add(1);
  if (frame_ms > rec.deadline_ms) misses_ctr_->add(1);
  budget_gauge_->set(input.energy_budget_frac);
  frame_hist_->observe(frame_ms);
  if (rec.switch_us > 0.0) switch_hist_->observe(rec.switch_us);

  s.energy_left -= rec.energy_mj;

  // Deadline watchdog: N consecutive overruns force the certified max
  // level for the SENSED criticality — degraded but certified service.
  if (config.watchdog_overrun_frames > 0) {
    const double frame_total_ms = rec.latency_ms + rec.switch_us / 1000.0;
    if (frame_total_ms > config.deadline_ms)
      ++s.consecutive_overruns;
    else
      s.consecutive_overruns = 0;
    if (s.consecutive_overruns >= config.watchdog_overrun_frames) {
      const int ladder_max = controller.provider().level_count() - 1;
      const int forced =
          monitor ? std::min(monitor->certified_max(input.criticality),
                             ladder_max)
                  : ladder_max;
      const int from = controller.provider().current_level();
      if (forced != from) {
        const core::TransitionStats t =
            controller.provider().set_level(forced);
        s.carried_switch_us =
            platform.switch_latency_us(t.bytes_written) + t.backoff_us;
        s.carried_switch_energy = platform.switch_energy_mj(t.bytes_written);
      }
      if (monitor)
        monitor->record_watchdog_degrade(input.frame, input.criticality,
                                         from, forced);
      s.consecutive_overruns = 0;
    }
  }

  // Black box + SLOs, last so watchdog/integrity interventions of THIS
  // frame land in this frame's record.  Pure bookkeeping on the driving
  // thread; byte-identical across RRP_THREADS like the rest of the
  // observability layer.
  if (recorder != nullptr || slo != nullptr) {
    const std::int64_t detects =
        monitor ? monitor->integrity_detect_count() : 0;
    const std::int64_t repairs =
        monitor ? monitor->integrity_repair_count() : 0;
    const std::int64_t degrades =
        monitor ? monitor->watchdog_degrade_count() : 0;
    if (recorder != nullptr) {
      core::FlightRecord fr;
      fr.frame = rec.frame;
      fr.criticality = static_cast<std::int32_t>(input.criticality);
      fr.true_criticality = static_cast<std::int32_t>(rec.criticality);
      fr.requested_level = rec.requested_level;
      fr.executed_level = rec.executed_level;
      fr.latency_ms = rec.latency_ms;
      fr.switch_us = rec.switch_us;
      fr.deadline_ms = rec.deadline_ms;
      fr.energy_mj = rec.energy_mj;
      fr.flags = (rec.correct ? core::FlightRecord::kCorrect : 0u) |
                 (rec.veto ? core::FlightRecord::kVeto : 0u) |
                 (rec.violation ? core::FlightRecord::kViolation : 0u) |
                 (rec.true_violation ? core::FlightRecord::kTrueViolation
                                     : 0u);
      fr.integrity_detects =
          static_cast<std::int32_t>(detects - s.prev_detects);
      fr.integrity_repairs =
          static_cast<std::int32_t>(repairs - s.prev_repairs);
      fr.watchdog_degrades =
          static_cast<std::int32_t>(degrades - s.prev_degrades);
      fr.span_digest =
          trace::enabled() ? core::span_window_digest(span_base) : 0;
      recorder->record(fr);
    }
    if (slo != nullptr) {
      if (rec.violation)
        slo->note_event(rec.frame, "safety.violation",
                        static_cast<double>(rec.executed_level),
                        "executed level above certified max");
      if (degrades > s.prev_degrades)
        slo->note_event(rec.frame, "safety.watchdog_degrade",
                        static_cast<double>(degrades - s.prev_degrades),
                        "deadline watchdog forced certified level");
      if (detects > s.prev_detects)
        slo->note_event(rec.frame, "integrity.detect",
                        static_cast<double>(detects - s.prev_detects),
                        "scrub detected weight divergence");
      slo->evaluate(rec.frame);
    }
    s.prev_detects = detects;
    s.prev_repairs = repairs;
    s.prev_degrades = degrades;
  }

  ++s.frame;
}

RunResult FrameEngine::finish(StreamState& s) const {
  if (s.harness != nullptr) s.harness->injected = s.injector.injected();
  s.result.wall.enabled = config_.measure_wall;
  s.result.summary = s.result.telemetry.summarize();
  return std::move(s.result);
}

}  // namespace rrp::sim
