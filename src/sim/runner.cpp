#include "sim/runner.h"

#include <algorithm>

#include "nn/loss.h"
#include "util/checks.h"

namespace rrp::sim {

double provider_accuracy(core::InferenceProvider& provider,
                         const nn::Dataset& data, int batch) {
  if (data.size() == 0) return 0.0;
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<int> labels;
  std::size_t correct = 0;
  for (std::size_t first = 0; first < order.size();
       first += static_cast<std::size_t>(batch)) {
    const std::size_t count =
        std::min(static_cast<std::size_t>(batch), order.size() - first);
    const nn::Tensor x = data.batch(order, first, count, &labels);
    const nn::Tensor logits = provider.infer(x);
    const auto preds = nn::argmax_rows(logits);
    for (std::size_t i = 0; i < count; ++i) correct += (preds[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

core::LevelProfile profile_levels(core::InferenceProvider& provider,
                                  const PlatformModel& platform,
                                  const nn::Dataset& eval,
                                  const nn::Shape& input_shape,
                                  int eval_batch) {
  core::LevelProfile profile;
  for (int k = 0; k < provider.level_count(); ++k) {
    provider.set_level(k);
    const std::int64_t macs = provider.active_macs(input_shape);
    profile.latency_ms.push_back(platform.latency_ms(macs));
    profile.energy_mj.push_back(platform.energy_mj(macs));
    profile.accuracy.push_back(provider_accuracy(provider, eval, eval_batch));
  }
  provider.set_level(0);
  return profile;
}

RunResult run_scenario(const Scenario& scenario,
                       core::RuntimeController& controller,
                       const RunConfig& config) {
  RRP_CHECK_MSG(!scenario.scenes.empty(), "scenario has no frames");
  RunResult result;
  result.scenario = scenario.name;
  result.provider = controller.provider().name();
  result.policy = controller.policy().name();

  const PlatformModel platform(config.platform);
  const nn::Shape in_shape = input_shape(config.vision);
  Rng noise(config.noise_seed);
  double energy_left = config.energy_budget_mj;
  PerceptionCriticality estimator(config.perception_criticality);
  core::CriticalityClass perceived = core::CriticalityClass::Low;

  RRP_CHECK(config.sensing_delay_frames >= 0);
  RRP_CHECK(config.sensor_blackout_prob >= 0.0 &&
            config.sensor_blackout_prob <= 1.0);
  for (std::size_t f = 0; f < scenario.scenes.size(); ++f) {
    const Scene& scene = scenario.scenes[f];
    // The controller and monitor see the criticality the perception stack
    // has already published — `sensing_delay_frames` behind the world.
    const std::size_t sensed_frame =
        f >= static_cast<std::size_t>(config.sensing_delay_frames)
            ? f - static_cast<std::size_t>(config.sensing_delay_frames)
            : 0;
    const Scene& sensed_scene = scenario.scenes[sensed_frame];

    // Monitor: perception context (criticality) and platform state.
    core::ControlInput input;
    input.frame = static_cast<std::int64_t>(f);
    switch (config.criticality_source) {
      case CriticalitySource::GroundTruthTtc:
        input.criticality = classify_scene(sensed_scene, config.criticality);
        break;
      case CriticalitySource::Perception:
        input.criticality = perceived;  // last frame's own assessment
        break;
      case CriticalitySource::PerceptionFloor:
        input.criticality =
            std::max(perceived, core::CriticalityClass::Medium);
        break;
    }
    input.deadline_ms = config.deadline_ms;
    input.energy_budget_frac =
        config.energy_budget_mj > 0.0
            ? std::clamp(energy_left / config.energy_budget_mj, 0.0, 1.0)
            : 1.0;

    // Analyze/Plan/Execute: the controller applies a (screened) level.
    const core::ControlDecision d = controller.step(input);

    // Perceive: render the sensor frame (maybe lost) and run inference.
    const bool blackout = config.sensor_blackout_prob > 0.0 &&
                          noise.bernoulli(config.sensor_blackout_prob);
    Scene sensed_view = scene;
    if (blackout) sensed_view.actors.clear();  // empty road, noise only
    const nn::Tensor frame = render_scene(sensed_view, config.vision, noise);
    nn::Shape batched = frame.shape();
    batched.insert(batched.begin(), 1);
    const nn::Tensor logits =
        controller.provider().infer(frame.reshape(batched));
    const int pred = nn::argmax_rows(logits)[0];
    const int label = scene_label(scene);
    perceived = estimator.update(pred, logits.reshape({logits.size(-1)}));

    // Account: platform-model latency/energy for this frame.
    const std::int64_t macs = controller.provider().active_macs(in_shape);
    const bool switched = d.transition.from_level != d.transition.to_level;
    const double switch_us =
        switched ? platform.switch_latency_us(d.transition.bytes_written) : 0.0;
    const double switch_energy =
        switched ? platform.switch_energy_mj(d.transition.bytes_written) : 0.0;

    core::FrameRecord rec;
    rec.frame = input.frame;
    rec.criticality = classify_scene(scene, config.criticality);
    rec.requested_level = d.requested_level;
    rec.executed_level = controller.provider().current_level();
    rec.latency_ms = platform.latency_ms(macs);
    rec.energy_mj = platform.energy_mj(macs) + switch_energy;
    rec.switch_us = switch_us;
    rec.deadline_ms = config.deadline_ms;
    rec.correct = pred == label;
    rec.veto = d.veto;
    rec.violation = controller.monitor() != nullptr &&
                    rec.executed_level >
                        controller.monitor()->certified_max(input.criticality);
    rec.true_violation =
        controller.monitor() != nullptr &&
        rec.executed_level >
            controller.monitor()->certified_max(rec.criticality);
    result.telemetry.add(rec);

    energy_left -= rec.energy_mj;
  }
  result.summary = result.telemetry.summarize();
  return result;
}

}  // namespace rrp::sim
