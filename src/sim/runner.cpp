#include "sim/runner.h"

#include <algorithm>

#include "nn/loss.h"
#include "sim/frame_engine.h"
#include "util/checks.h"

namespace rrp::sim {

double WallStats::mean_infer_us(int level) const {
  double sum = 0.0;
  std::int64_t n = 0;
  for (const WallFrame& w : frames)
    if (level < 0 || w.level == level) {
      sum += w.infer_us;
      ++n;
    }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double provider_accuracy(core::InferenceProvider& provider,
                         const nn::Dataset& data, int batch) {
  if (data.size() == 0) return 0.0;
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<int> labels;
  std::size_t correct = 0;
  for (std::size_t first = 0; first < order.size();
       first += static_cast<std::size_t>(batch)) {
    const std::size_t count =
        std::min(static_cast<std::size_t>(batch), order.size() - first);
    const nn::Tensor x = data.batch(order, first, count, &labels);
    const nn::Tensor logits = provider.infer(x);
    const auto preds = nn::argmax_rows(logits);
    for (std::size_t i = 0; i < count; ++i) correct += (preds[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

core::LevelProfile profile_levels(core::InferenceProvider& provider,
                                  const PlatformModel& platform,
                                  const nn::Dataset& eval,
                                  const nn::Shape& input_shape,
                                  int eval_batch) {
  core::LevelProfile profile;
  for (int k = 0; k < provider.level_count(); ++k) {
    provider.set_level(k);
    const std::int64_t macs = provider.active_macs(input_shape);
    profile.latency_ms.push_back(platform.latency_ms(macs));
    profile.energy_mj.push_back(platform.energy_mj(macs));
    profile.accuracy.push_back(provider_accuracy(provider, eval, eval_batch));
  }
  provider.set_level(0);
  return profile;
}

RunResult run_scenario(const Scenario& scenario,
                       core::RuntimeController& controller,
                       const RunConfig& config) {
  return run_scenario(scenario, controller, config, nullptr);
}

RunResult run_scenario(const Scenario& scenario,
                       core::RuntimeController& controller,
                       const RunConfig& config, FaultHarness* harness) {
  FrameEngine engine(config);
  StreamState stream = engine.make_stream(scenario, controller, harness);
  while (!stream.done()) engine.step(stream);
  return engine.finish(stream);
}

}  // namespace rrp::sim
